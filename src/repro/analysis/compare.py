"""Vlasov-vs-N-body comparison machinery (paper §5.4, Figs. 5-6, §7.2).

The paper's central scientific claim is that the Vlasov representation of
the neutrinos eliminates the shot noise that compromises particle-based
runs at the same cost.  This module provides the quantitative versions of
those comparisons:

* local velocity distributions (Fig. 5): the Vlasov f at one spatial cell
  against a histogram of the particles in the same cell;
* moment-field comparisons (Fig. 6): density / velocity / dispersion maps
  from both representations, plus their noise statistics;
* the shot-noise algebra of §7.2 (Eqs. 9-10) lives in
  :mod:`repro.scaling.tts`; here are the empirical counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import moments
from ..core.mesh import PhaseSpaceGrid
from ..nbody.particles import ParticleSet
from ..nbody.pm import assign_mass


def _ngp_cells(
    positions: np.ndarray, grid: PhaseSpaceGrid
) -> tuple[np.ndarray, ...]:
    """Periodic NGP cell index per particle and spatial axis.

    Matches :func:`repro.nbody.pm.assign_mass`'s NGP convention
    (``floor(pos/box*n) % n``): a particle at or past the box edge wraps
    onto cell 0 instead of being clipped into cell n-1.
    """
    return tuple(
        np.floor(
            positions[:, d] / grid.box_size * grid.nx[d]
        ).astype(np.int64) % grid.nx[d]
        for d in range(grid.dim)
    )


def particle_moments_on_grid(
    particles: ParticleSet, grid: PhaseSpaceGrid, window: str = "ngp"
) -> dict[str, np.ndarray]:
    """Density, velocity and dispersion of a particle set on grid.nx.

    NGP binning (window='ngp') keeps the estimator unbiased for the
    dispersion; CIC/TSC smooth the density but correlate neighboring
    cells.
    """
    rho = assign_mass(
        particles.positions, particles.masses, grid.nx, grid.box_size, window
    )
    # velocity moments: NGP binning of m*u and m*u^2, wrapped exactly
    # like assign_mass's NGP window (floor then mod) — clipping to the
    # last cell put boundary particles' velocity contributions in a
    # different cell than their mass, so the moment fields disagreed.
    idx1 = _ngp_cells(particles.positions, grid)
    flat = np.ravel_multi_index(idx1, grid.nx)
    m = particles.masses
    msum = np.bincount(flat, weights=m, minlength=int(np.prod(grid.nx)))
    vel = np.zeros((grid.dim,) + grid.nx)
    disp = np.zeros(grid.nx)
    with np.errstate(divide="ignore", invalid="ignore"):
        for d in range(grid.dim):
            mu = np.bincount(
                flat, weights=m * particles.velocities[:, d],
                minlength=int(np.prod(grid.nx)),
            )
            mu2 = np.bincount(
                flat, weights=m * particles.velocities[:, d] ** 2,
                minlength=int(np.prod(grid.nx)),
            )
            mean = np.where(msum > 0, mu / msum, 0.0)
            mean_sq = np.where(msum > 0, mu2 / msum, 0.0)
            vel[d] = mean.reshape(grid.nx)
            disp += np.maximum(mean_sq - mean**2, 0.0).reshape(grid.nx)
    return {
        "density": rho,
        "velocity": vel,
        "dispersion": np.sqrt(disp / grid.dim),
        "counts": np.bincount(flat, minlength=int(np.prod(grid.nx))).reshape(grid.nx),
    }


def vlasov_moments_on_grid(f: np.ndarray, grid: PhaseSpaceGrid) -> dict[str, np.ndarray]:
    """The matching moment set from the distribution function."""
    rho = moments.density(f, grid)
    return {
        "density": rho,
        "velocity": moments.mean_velocity(f, grid, rho),
        "dispersion": moments.velocity_dispersion(f, grid, rho),
    }


def local_velocity_distribution(
    f: np.ndarray, grid: PhaseSpaceGrid, cell: tuple[int, ...]
) -> dict[str, np.ndarray]:
    """Fig. 5's smooth curve: f at one spatial cell vs speed bins.

    Returns the raw velocity-space block and its speed histogram
    (mass per speed bin, normalized to a density).
    """
    block = np.asarray(f[cell], dtype=np.float64)
    speed = np.zeros(grid.nu)
    for d in range(grid.dim):
        u = grid.u_centers(d)
        shape = [1] * grid.dim
        shape[d] = grid.nu[d]
        speed = speed + u.reshape(shape) ** 2
    speed = np.sqrt(speed)
    bins = np.linspace(0.0, grid.v_max * np.sqrt(grid.dim), 40)
    mass, _ = np.histogram(
        speed.ravel(), bins=bins, weights=block.ravel() * grid.cell_volume_u
    )
    # phase-space volume per bin (cells falling in the bin x du^dim):
    # dividing it out turns the binned mass into the *average f* per bin,
    # which is the smooth curve Fig. 5 plots (raw binned mass inherits
    # combinatorial jitter from the discrete |u| values)
    counts, _ = np.histogram(speed.ravel(), bins=bins)
    volume = counts * grid.cell_volume_u
    with np.errstate(divide="ignore", invalid="ignore"):
        f_mean = np.where(counts > 0, mass / volume, 0.0)
    return {
        "f_block": block,
        "speed_bins": bins,
        "mass_per_bin": mass,
        "bin_volume": volume,
        "f_mean_per_bin": f_mean,
    }


def particle_velocity_histogram(
    particles: ParticleSet,
    grid: PhaseSpaceGrid,
    cell: tuple[int, ...],
    bins: np.ndarray,
) -> np.ndarray:
    """Fig. 5's open circles: particle speeds in the same spatial cell."""
    idx = _ngp_cells(particles.positions, grid)
    in_cell = np.ones(particles.n, dtype=bool)
    for d in range(grid.dim):
        in_cell &= idx[d] == cell[d]
    speeds = np.sqrt((particles.velocities[in_cell] ** 2).sum(axis=1))
    mass, _ = np.histogram(speeds, bins=bins, weights=particles.masses[in_cell])
    return mass


@dataclass(frozen=True)
class NoiseComparison:
    """Summary statistics of the Vlasov-vs-particle moment comparison."""

    density_rms_diff: float
    velocity_rms_diff: float
    dispersion_rms_diff: float
    particle_shot_noise: float
    mean_particles_per_cell: float


def compare_noise(
    f: np.ndarray,
    grid: PhaseSpaceGrid,
    particles: ParticleSet,
) -> NoiseComparison:
    """Fig. 6's quantitative content.

    The RMS relative difference of the particle moments from the (smooth)
    Vlasov moments should track the Poisson prediction 1/sqrt(N_cell) —
    which is the tested invariant: the "noise" in the particle maps *is*
    shot noise, not physics.
    """
    v = vlasov_moments_on_grid(f, grid)
    p = particle_moments_on_grid(particles, grid)
    rho_v, rho_p = v["density"], p["density"]
    scale = max(float(rho_v.mean()), 1e-30)
    dens_rms = float(np.sqrt(((rho_p - rho_v) ** 2).mean()) / scale)

    vel_scale = max(float(np.abs(v["velocity"]).max()), 1e-30)
    vel_rms = float(
        np.sqrt(((p["velocity"] - v["velocity"]) ** 2).mean()) / vel_scale
    )
    disp_scale = max(float(v["dispersion"].mean()), 1e-30)
    disp_rms = float(
        np.sqrt(((p["dispersion"] - v["dispersion"]) ** 2).mean()) / disp_scale
    )
    n_per_cell = particles.n / np.prod(grid.nx)
    return NoiseComparison(
        density_rms_diff=dens_rms,
        velocity_rms_diff=vel_rms,
        dispersion_rms_diff=disp_rms,
        particle_shot_noise=1.0 / np.sqrt(n_per_cell),
        mean_particles_per_cell=float(n_per_cell),
    )
