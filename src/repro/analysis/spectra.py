"""Spectral statistics beyond the auto power spectrum.

Cross-spectra and transfer ratios are the working tools of the neutrino
cosmology program the paper serves: the neutrino-mass signature is a
*ratio* of spectra (suppression), and the neutrino-CDM cross-correlation
measures how faithfully the hot component traces the potential wells.
"""

from __future__ import annotations

import numpy as np

from ..ic.gaussian_field import FourierGrid


def _binned(k_flat, values, weights, box_size, n_bins, k_range):
    if k_range is None:
        k_min = 2.0 * np.pi / box_size * 0.99
        k_max = k_flat.max() * 1.001
    else:
        k_min, k_max = k_range
    edges = np.geomspace(k_min, k_max, n_bins + 1)
    which = np.digitize(k_flat, edges) - 1
    valid = (which >= 0) & (which < n_bins)
    v_sum = np.bincount(which[valid], weights=(values * weights)[valid], minlength=n_bins)
    w_sum = np.bincount(which[valid], weights=weights[valid], minlength=n_bins)
    k_sum = np.bincount(which[valid], weights=(k_flat * weights)[valid], minlength=n_bins)
    keep = w_sum > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        return k_sum[keep] / w_sum[keep], v_sum[keep] / w_sum[keep], w_sum[keep]


def _mode_weights(grid: FourierGrid) -> np.ndarray:
    """rfft half-plane multiplicities."""
    k = grid.k_magnitude()
    w = np.full(k.shape, 2.0)
    w[..., 0] = 1.0
    if grid.n_mesh[-1] % 2 == 0:
        w[..., -1] = 1.0
    return w


def cross_power(
    field_a: np.ndarray,
    field_b: np.ndarray,
    box_size: float,
    n_bins: int = 16,
    k_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bin-averaged cross spectrum P_ab(k) = Re<A B*> V / N^2.

    Returns ``(k, P_ab, mode_counts)``.  For field_a == field_b this
    reduces to :func:`repro.ic.measure_power`.
    """
    if field_a.shape != field_b.shape:
        raise ValueError("fields must share a mesh")
    grid = FourierGrid(field_a.shape, box_size)
    a_k = np.fft.rfftn(field_a)
    b_k = np.fft.rfftn(field_b)
    p_raw = np.real(a_k * np.conj(b_k)) * grid.volume / grid.n_cells**2
    w = _mode_weights(grid)
    k = grid.k_magnitude().ravel()
    nz = k > 0
    return _binned(
        k[nz], p_raw.ravel()[nz], w.ravel()[nz], box_size, n_bins, k_range
    )


def correlation_coefficient(
    field_a: np.ndarray,
    field_b: np.ndarray,
    box_size: float,
    n_bins: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """Scale-dependent correlation r(k) = P_ab / sqrt(P_aa P_bb).

    r -> 1 where the fields share phases (the neutrinos tracing CDM on
    large scales), dropping where free streaming decouples them.
    """
    k, p_ab, _ = cross_power(field_a, field_b, box_size, n_bins)
    _, p_aa, _ = cross_power(field_a, field_a, box_size, n_bins)
    _, p_bb, _ = cross_power(field_b, field_b, box_size, n_bins)
    with np.errstate(divide="ignore", invalid="ignore"):
        r = p_ab / np.sqrt(np.abs(p_aa * p_bb))
    return k, r


def transfer_ratio(
    field_num: np.ndarray,
    field_den: np.ndarray,
    box_size: float,
    n_bins: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """sqrt(P_num / P_den)(k): the amplitude ratio of two fields.

    The neutrino-mass observable: T(k) = sqrt(P(M_nu) / P(0)) exhibits the
    free-streaming suppression step.
    """
    k, p_n, _ = cross_power(field_num, field_num, box_size, n_bins)
    _, p_d, _ = cross_power(field_den, field_den, box_size, n_bins)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.sqrt(np.abs(p_n) / np.abs(p_d))
    return k, t


def dimensionless_power(
    field: np.ndarray, box_size: float, n_bins: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Delta^2(k) = k^3 P(k) / (2 pi^2): the per-log-k variance."""
    k, p, _ = cross_power(field, field, box_size, n_bins)
    return k, k**3 * p / (2.0 * np.pi**2)
