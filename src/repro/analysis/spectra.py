"""Spectral statistics beyond the auto power spectrum.

Cross-spectra and transfer ratios are the working tools of the neutrino
cosmology program the paper serves: the neutrino-mass signature is a
*ratio* of spectra (suppression), and the neutrino-CDM cross-correlation
measures how faithfully the hot component traces the potential wells.

Ratio estimators (:func:`transfer_ratio`, :func:`correlation_coefficient`)
bin every spectrum onto **one shared set of k edges** before dividing.
Binning each field with its own auto-derived edges — the original
behavior — silently broke as soon as the two fields lived on different
meshes: each mesh has a different maximum |k|, so the per-field edges
(and surviving bins) diverged and the ratio was taken between mismatched
k arrays.  The shared edges span the common fundamental mode up to the
*coarser* mesh's k_max, so every bin is populated by both fields.
"""

from __future__ import annotations

import numpy as np

from ..ic.gaussian_field import FourierGrid


def _bin_edges(box_size, k_max, n_bins, k_range):
    """Logarithmic bin edges, auto-spanned unless the caller fixes them."""
    if k_range is None:
        k_min = 2.0 * np.pi / box_size * 0.99
        k_max = k_max * 1.001
    else:
        k_min, k_max = k_range
    return np.geomspace(k_min, k_max, n_bins + 1)


def _digitize(k_flat, edges):
    """Bin assignment with a *closed* top edge.

    ``np.digitize`` is right-open, so a mode sitting exactly on the last
    edge — which happens whenever a caller passes an explicit ``k_range``
    whose max is a grid mode, e.g. ``(k_f, k.max())`` — landed in bin
    ``n_bins`` and was silently dropped.  Fold it into the last bin.
    """
    n_bins = len(edges) - 1
    which = np.digitize(k_flat, edges) - 1
    which[k_flat == edges[-1]] = n_bins - 1
    valid = (which >= 0) & (which < n_bins)
    return which, valid


def _binned_full(k_flat, values, weights, edges):
    """Weighted bin means over *all* bins (empty bins keep zero weight).

    Returns ``(k_mean, v_mean, w_sum)`` of length ``n_bins``; empty bins
    have ``w_sum == 0`` and zeroed means.  Ratio estimators align several
    spectra positionally on this fixed-length form before masking.
    """
    n_bins = len(edges) - 1
    which, valid = _digitize(k_flat, edges)
    v_sum = np.bincount(which[valid], weights=(values * weights)[valid], minlength=n_bins)
    w_sum = np.bincount(which[valid], weights=weights[valid], minlength=n_bins)
    k_sum = np.bincount(which[valid], weights=(k_flat * weights)[valid], minlength=n_bins)
    with np.errstate(divide="ignore", invalid="ignore"):
        k_mean = np.where(w_sum > 0, k_sum / w_sum, 0.0)
        v_mean = np.where(w_sum > 0, v_sum / w_sum, 0.0)
    return k_mean, v_mean, w_sum


def _binned(k_flat, values, weights, box_size, n_bins, k_range):
    edges = _bin_edges(box_size, k_flat.max(), n_bins, k_range)
    k_mean, v_mean, w_sum = _binned_full(k_flat, values, weights, edges)
    keep = w_sum > 0
    return k_mean[keep], v_mean[keep], w_sum[keep]


def _mode_weights(grid: FourierGrid) -> np.ndarray:
    """rfft half-plane multiplicities."""
    k = grid.k_magnitude()
    w = np.full(k.shape, 2.0)
    w[..., 0] = 1.0
    if grid.n_mesh[-1] % 2 == 0:
        w[..., -1] = 1.0
    return w


def _spectrum_modes(
    field_a: np.ndarray, field_b: np.ndarray, box_size: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unbinned cross-spectrum modes: ``(|k|, P_ab(k), multiplicity)``."""
    if field_a.shape != field_b.shape:
        raise ValueError("fields must share a mesh")
    grid = FourierGrid(field_a.shape, box_size)
    a_k = np.fft.rfftn(field_a)
    b_k = a_k if field_b is field_a else np.fft.rfftn(field_b)
    p_raw = np.real(a_k * np.conj(b_k)) * grid.volume / grid.n_cells**2
    w = _mode_weights(grid)
    k = grid.k_magnitude().ravel()
    nz = k > 0
    return k[nz], p_raw.ravel()[nz], w.ravel()[nz]


def cross_power(
    field_a: np.ndarray,
    field_b: np.ndarray,
    box_size: float,
    n_bins: int = 16,
    k_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bin-averaged cross spectrum P_ab(k) = Re<A B*> V / N^2.

    Returns ``(k, P_ab, mode_counts)``.  For field_a == field_b this
    reduces to :func:`repro.ic.measure_power`.
    """
    k, p, w = _spectrum_modes(field_a, field_b, box_size)
    return _binned(k, p, w, box_size, n_bins, k_range)


def _shared_edges(k_a, k_b, box_size, n_bins, k_range):
    """One edge set both meshes can populate: up to the coarser k_max."""
    return _bin_edges(box_size, min(k_a.max(), k_b.max()), n_bins, k_range)


def correlation_coefficient(
    field_a: np.ndarray,
    field_b: np.ndarray,
    box_size: float,
    n_bins: int = 16,
    k_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Scale-dependent correlation r(k) = P_ab / sqrt(P_aa P_bb).

    r -> 1 where the fields share phases (the neutrinos tracing CDM on
    large scales), dropping where free streaming decouples them.  All
    three spectra are binned onto the same explicit edges, so the ratio
    is taken bin-by-bin on one aligned k array.
    """
    k_m, p_ab_m, w = _spectrum_modes(field_a, field_b, box_size)
    edges = _shared_edges(k_m, k_m, box_size, n_bins, k_range)
    _, p_aa_m, _ = _spectrum_modes(field_a, field_a, box_size)
    _, p_bb_m, _ = _spectrum_modes(field_b, field_b, box_size)
    k, p_ab, w_sum = _binned_full(k_m, p_ab_m, w, edges)
    _, p_aa, _ = _binned_full(k_m, p_aa_m, w, edges)
    _, p_bb, _ = _binned_full(k_m, p_bb_m, w, edges)
    keep = w_sum > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(keep, p_ab / np.sqrt(np.abs(p_aa * p_bb)), 0.0)
    return k[keep], r[keep]


def transfer_ratio(
    field_num: np.ndarray,
    field_den: np.ndarray,
    box_size: float,
    n_bins: int = 16,
    k_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """sqrt(P_num / P_den)(k): the amplitude ratio of two fields.

    The neutrino-mass observable: T(k) = sqrt(P(M_nu) / P(0)) exhibits the
    free-streaming suppression step.  The fields may live on *different*
    meshes (the Vlasov neutrino grid vs the PM CDM mesh): both spectra
    are rebinned onto shared edges spanning up to the coarser mesh's
    k_max, and only bins populated by both fields are returned.  The k
    array is the numerator field's weighted mean mode per bin.
    """
    k_n, p_n_m, w_n = _spectrum_modes(field_num, field_num, box_size)
    k_d, p_d_m, w_d = _spectrum_modes(field_den, field_den, box_size)
    edges = _shared_edges(k_n, k_d, box_size, n_bins, k_range)
    k, p_n, w_n_sum = _binned_full(k_n, p_n_m, w_n, edges)
    _, p_d, w_d_sum = _binned_full(k_d, p_d_m, w_d, edges)
    keep = (w_n_sum > 0) & (w_d_sum > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.sqrt(np.abs(p_n) / np.abs(p_d))
    return k[keep], t[keep]


def dimensionless_power(
    field: np.ndarray, box_size: float, n_bins: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Delta^2(k) = k^3 P(k) / (2 pi^2): the per-log-k variance."""
    k, p, _ = cross_power(field, field, box_size, n_bins)
    return k, k**3 * p / (2.0 * np.pi**2)
