"""Timers and conservation ledgers."""

from .timers import ConservationLedger, SectionStats, StepTimer

__all__ = ["ConservationLedger", "SectionStats", "StepTimer"]
