"""Hierarchical wall-clock timers (the paper's measurement mechanism).

The paper: "The performance is evaluated in terms of wall clock elapsed
time measured with the clock_gettime() system call ... we run the
simulations by 40 steps and take the median values."  This module
provides the same discipline: named sections, nesting, per-step laps,
median/percentile reporting.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SectionStats:
    """Lap times of one named section."""

    laps: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        """Record one lap."""
        self.laps.append(seconds)

    @property
    def total(self) -> float:
        """Sum of laps."""
        return float(sum(self.laps))

    @property
    def median(self) -> float:
        """Median lap (the paper's reported statistic)."""
        if not self.laps:
            raise ValueError("no laps recorded")
        return float(np.median(self.laps))

    @property
    def count(self) -> int:
        """Number of laps."""
        return len(self.laps)


class StepTimer:
    """Named, nestable wall-clock sections.

    Nested sections are qualified with their parent's name, so the same
    leaf timed under two parents stays distinguishable (``step/drift``
    vs ``warmup/drift``).  A name that already carries its parent's
    prefix — e.g. the explicit ``vlasov/drift`` below — is kept as-is,
    so both spelling styles produce the same keys::

        timer = StepTimer()
        with timer.section("vlasov"):
            with timer.section("vlasov/drift"):   # or just "drift"
                ...
        timer.median("vlasov/drift")
        print(timer.report())
    """

    def __init__(self) -> None:
        self.sections: dict[str, SectionStats] = {}
        self._stack: list[str] = []

    @contextmanager
    def section(self, name: str):
        """Time a code block under ``name`` (qualified as parent/name
        when nested inside another section)."""
        if self._stack:
            parent = self._stack[-1]
            if not name.startswith(parent + "/"):
                name = f"{parent}/{name}"
        self._stack.append(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.sections.setdefault(name, SectionStats()).add(elapsed)
            self._stack.pop()

    def add(self, name: str, seconds: float) -> None:
        """Record one externally measured lap under ``name`` (verbatim).

        Unlike :meth:`section`, the name is *not* qualified against the
        active section stack: callers that merge laps measured elsewhere
        (worker processes reporting ``domain/halo`` time, say) want a
        stable key regardless of which section the merge happens under.
        """
        self.sections.setdefault(name, SectionStats()).add(float(seconds))

    def median(self, name: str) -> float:
        """Median lap of a section."""
        if name not in self.sections:
            raise KeyError(f"no section named {name!r}")
        return self.sections[name].median

    def report(self) -> str:
        """Text table: section, laps, median, total."""
        lines = [f"{'section':<28} {'laps':>5} {'median[s]':>10} {'total[s]':>10}"]
        for name in sorted(self.sections):
            s = self.sections[name]
            lines.append(
                f"{name:<28} {s.count:>5} {s.median:>10.4f} {s.total:>10.3f}"
            )
        return "\n".join(lines)


@dataclass
class ConservationLedger:
    """Tracks conserved quantities across a run.

    Register the initial values once; :meth:`relative_drift` returns the
    worst drift so far — the tests assert it stays within scheme
    guarantees (mass: machine epsilon; energy: splitting-order drift).

    Drift semantics are explicit about the zero-initial-value corner: a
    quantity registered at ``q0 != 0`` reports the *relative* drift
    ``max |q/q0 - 1|``, while one registered at exactly ``q0 == 0`` (net
    momentum of a symmetric IC, say) has no meaningful relative scale and
    reports the *absolute* excursion ``max |q|`` instead.
    :meth:`is_relative` tells the caller which of the two a key uses, so
    thresholds are never compared against the wrong kind silently.

    The worst drift is maintained incrementally — ``relative_drift`` is
    O(1) per call, not O(steps) — so per-step telemetry can export it
    without turning a long run quadratic.
    """

    initial: dict[str, float] = field(default_factory=dict)
    history: dict[str, list[float]] = field(default_factory=dict)
    _worst: dict[str, float] = field(default_factory=dict, repr=False)

    def register(self, **quantities: float) -> None:
        """Record initial values."""
        for key, value in quantities.items():
            self.initial[key] = float(value)
            self.history[key] = [float(value)]
            self._worst[key] = self._one_drift(key, float(value))

    def update(self, **quantities: float) -> None:
        """Record current values."""
        for key, value in quantities.items():
            if key not in self.initial:
                raise KeyError(f"{key!r} was never registered")
            value = float(value)
            self.history[key].append(value)
            drift = self._one_drift(key, value)
            if drift > self._worst[key]:
                self._worst[key] = drift

    def _one_drift(self, key: str, value: float) -> float:
        q0 = self.initial[key]
        if q0 == 0.0:
            return abs(value)
        return abs(value / q0 - 1.0)

    def is_relative(self, key: str) -> bool:
        """Whether this key's drift is relative (q0 != 0) or absolute."""
        if key not in self.initial:
            raise KeyError(f"{key!r} was never registered")
        return self.initial[key] != 0.0

    def current(self, key: str) -> float:
        """Most recently recorded value of one quantity."""
        if key not in self.initial:
            raise KeyError(f"{key!r} was never registered")
        return self.history[key][-1]

    def relative_drift(self, key: str) -> float:
        """Largest |q/q0 - 1| seen (|q| when q0 == 0 — see class docs)."""
        if key not in self.initial:
            raise KeyError(f"{key!r} was never registered")
        return self._worst[key]

    #: Alias making the mixed semantics visible at call sites.
    drift = relative_drift

    def absolute_drift(self, key: str) -> float:
        """Largest |q - q0| seen for one quantity."""
        if key not in self.initial:
            raise KeyError(f"{key!r} was never registered")
        q0 = self.initial[key]
        return max(abs(q - q0) for q in self.history[key])

    def as_dict(self) -> dict[str, dict]:
        """Machine-readable export (the telemetry stream's ``drifts``).

        One entry per registered quantity: initial and latest values,
        the worst drift, and whether that drift is relative.
        """
        return {
            key: {
                "initial": self.initial[key],
                "latest": self.history[key][-1],
                "drift": self._worst[key],
                "relative": self.initial[key] != 0.0,
            }
            for key in self.initial
        }

    def report(self) -> str:
        """Text table: quantity, initial, latest, worst drift."""
        lines = [f"{'quantity':<16} {'initial':>14} {'latest':>14} {'drift':>10} kind"]
        for key, row in self.as_dict().items():
            kind = "rel" if row["relative"] else "abs"
            lines.append(
                f"{key:<16} {row['initial']:>14.6e} {row['latest']:>14.6e} "
                f"{row['drift']:>10.3e} {kind}"
            )
        return "\n".join(lines)
