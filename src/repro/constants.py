"""Physical constants in CGS and convenient astrophysical units.

All constants are module-level floats.  Cosmological code in this package
works in the comoving unit system defined in :mod:`repro.units`; the raw CGS
values here are the single source of truth for conversions.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants (CGS)
# ---------------------------------------------------------------------------

#: Speed of light [cm/s]
C_LIGHT = 2.99792458e10

#: Gravitational constant [cm^3 g^-1 s^-2]
G_NEWTON = 6.67430e-8

#: Boltzmann constant [erg/K]
K_BOLTZMANN = 1.380649e-16

#: Planck constant [erg s]
H_PLANCK = 6.62607015e-27

#: Reduced Planck constant [erg s]
HBAR = H_PLANCK / (2.0 * math.pi)

#: Electron volt [erg]
EV = 1.602176634e-12

#: Proton mass [g]
M_PROTON = 1.67262192369e-24

# ---------------------------------------------------------------------------
# Astronomical lengths / times / masses
# ---------------------------------------------------------------------------

#: Parsec [cm]
PARSEC = 3.0856775814913673e18

#: Kiloparsec [cm]
KPC = 1.0e3 * PARSEC

#: Megaparsec [cm]
MPC = 1.0e6 * PARSEC

#: Solar mass [g]
M_SUN = 1.98892e33

#: Julian year [s]
YEAR = 3.15576e7

#: Gigayear [s]
GYR = 1.0e9 * YEAR

# ---------------------------------------------------------------------------
# Cosmology
# ---------------------------------------------------------------------------

#: Hubble constant for h = 1 [s^-1]:  100 km/s/Mpc
H100 = 1.0e7 / MPC

#: Present-day critical density for h = 1 [g/cm^3]:  3 H100^2 / (8 pi G)
RHO_CRIT_H2 = 3.0 * H100**2 / (8.0 * math.pi * G_NEWTON)

#: Present CMB temperature [K] (Fixsen 2009)
T_CMB = 2.7255

#: Relic neutrino temperature [K]:  (4/11)^(1/3) T_CMB
T_NU = T_CMB * (4.0 / 11.0) ** (1.0 / 3.0)

#: Effective number of neutrino species in the instantaneous-decoupling limit
N_NU_SPECIES = 3

#: Conversion: sum of neutrino masses [eV] -> Omega_nu h^2.
#: Omega_nu h^2 = M_nu / 93.14 eV  (e.g. Lesgourgues & Pastor 2006)
OMEGA_NU_H2_PER_EV = 1.0 / 93.14

#: Mean momentum of a relativistic Fermi-Dirac distribution in units of T:
#: <p>/T = 7 pi^4 / (180 zeta(3)) ~ 3.15137
FD_MEAN_P_OVER_T = 7.0 * math.pi**4 / (180.0 * 1.2020569031595943)

#: Riemann zeta(3), used in Fermi-Dirac number-density integrals
ZETA3 = 1.2020569031595943


def neutrino_omega(m_nu_total_ev: float, h: float) -> float:
    """Present-day neutrino density parameter for total mass ``m_nu_total_ev``.

    Parameters
    ----------
    m_nu_total_ev:
        Sum of the three neutrino mass eigenvalues in eV (the paper's
        ``M_nu``; its flagship runs use 0.4 eV and 0.2 eV).
    h:
        Normalized Hubble constant H0 / (100 km/s/Mpc).

    Returns
    -------
    float
        Omega_nu = M_nu / (93.14 eV h^2).
    """
    if m_nu_total_ev < 0.0:
        raise ValueError(f"total neutrino mass must be >= 0, got {m_nu_total_ev}")
    if h <= 0.0:
        raise ValueError(f"h must be positive, got {h}")
    return m_nu_total_ev * OMEGA_NU_H2_PER_EV / h**2


def neutrino_thermal_velocity(m_nu_ev: float, a: float = 1.0) -> float:
    """Characteristic thermal velocity of relic neutrinos [cm/s].

    The momentum distribution of relic neutrinos is a redshifted
    (massless-decoupling) Fermi-Dirac distribution with temperature
    ``T_nu / a``.  For a non-relativistic neutrino of mass ``m_nu`` the
    velocity associated with the mean momentum is

        v_th(a) = <p> c / (m_nu a) = 3.15137 (k_B T_nu) / (m_nu c) / a .

    Parameters
    ----------
    m_nu_ev:
        Mass of a *single* neutrino eigenstate in eV.
    a:
        Scale factor (a = 1 today).

    Returns
    -------
    float
        Thermal velocity in cm/s (peculiar velocity; may formally exceed c
        at very high redshift where the non-relativistic limit breaks down).
    """
    if m_nu_ev <= 0.0:
        raise ValueError(f"m_nu must be positive, got {m_nu_ev}")
    if a <= 0.0:
        raise ValueError(f"scale factor must be positive, got {a}")
    p_mean = FD_MEAN_P_OVER_T * K_BOLTZMANN * T_NU  # momentum*c today [erg]
    return p_mean / (m_nu_ev * EV) * C_LIGHT / a
