"""A64FX processor model (paper §6.1).

Hardware facts from the paper and public A64FX documentation, plus the
paper's own *measured* per-CMG sustained throughputs of the Vlasov kernels
(Table 1), which anchor the compute side of the cost model: rather than
guessing cache behavior, we use the sustained Gflops the authors measured
per advection direction and variant.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cores per CMG (core memory group).
CORES_PER_CMG = 12
#: CMGs per A64FX chip / node.
CMGS_PER_NODE = 4
#: HBM2 capacity per CMG [bytes].
MEMORY_PER_CMG = 8 * 2**30
#: HBM2 bandwidth per CMG [bytes/s] (1024 GB/s per node / 4).
BANDWIDTH_PER_CMG = 256.0e9
#: Theoretical peak per CMG, single precision [flop/s] (paper: 1.54 Tflops).
PEAK_SP_PER_CMG = 1.54e12
#: Theoretical peak per CMG, double precision [flop/s].
PEAK_DP_PER_CMG = 0.77e12
#: Ring-bus bandwidth between CMGs [bytes/s] (paper: 115 GB/s).
RING_BUS_BANDWIDTH = 115.0e9
#: Phantom-GRAPE sustained pairwise interaction rate per core with SVE
#: (paper §5.1.2: 1.2e9 interactions/s/core).
PHANTOM_GRAPE_RATE_PER_CORE = 1.2e9
#: ... and without explicit SVE use (2.4e7 interactions/s/core).
PHANTOM_GRAPE_RATE_SCALAR = 2.4e7


@dataclass(frozen=True)
class KernelThroughput:
    """Sustained per-CMG Gflops of one advection direction (Table 1).

    ``no_simd`` / ``simd`` / ``lat`` are the three columns; ``lat`` is None
    where the paper reports '-' (the LAT method is only needed for the
    strided u_z direction).
    """

    direction: str
    no_simd: float
    simd: float
    lat: float | None = None

    def best(self) -> float:
        """The production-path throughput [Gflop/s per CMG]."""
        return self.lat if self.lat is not None else self.simd


#: Paper Table 1, verbatim [Gflops per CMG].
TABLE1 = {
    "ux": KernelThroughput("ux", 4.84, 176.7),
    "uy": KernelThroughput("uy", 7.14, 233.3),
    "uz": KernelThroughput("uz", 7.44, 17.9, 224.2),
    "x": KernelThroughput("x", 5.51, 150.0),
    "y": KernelThroughput("y", 6.88, 154.1),
    "z": KernelThroughput("z", 6.50, 149.2),
}

#: Velocity-space directions (zero-communication advections).
VELOCITY_DIRECTIONS = ("ux", "uy", "uz")
#: Physical-space directions (ghost-exchange advections).
SPATIAL_DIRECTIONS = ("x", "y", "z")


def sustained_fraction(direction: str, variant: str = "best") -> float:
    """Sustained / peak-SP fraction for one direction.

    The paper quotes 12-15% of SP peak for the velocity-space sweeps —
    this reproduces that number from Table 1.
    """
    t = TABLE1[direction]
    value = {"no_simd": t.no_simd, "simd": t.simd, "best": t.best()}[variant]
    return value * 1.0e9 / PEAK_SP_PER_CMG


def roofline_time(flops: float, bytes_moved: float, n_cmg: float = 1.0,
                  peak: float = PEAK_SP_PER_CMG) -> float:
    """max(compute, memory) execution time on ``n_cmg`` CMGs [s]."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("flops and bytes must be non-negative")
    t_flops = flops / (peak * n_cmg)
    t_mem = bytes_moved / (BANDWIDTH_PER_CMG * n_cmg)
    return max(t_flops, t_mem)
