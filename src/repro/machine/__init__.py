"""Fugaku machine model: A64FX roofline, Tofu-D network, step cost model."""

from . import a64fx, tofu
from .costmodel import StepBreakdown, predict_io_time, predict_step

__all__ = ["a64fx", "tofu", "StepBreakdown", "predict_io_time", "predict_step"]
