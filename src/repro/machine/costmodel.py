"""Per-step cost model of the hybrid simulation on Fugaku.

Predicts the per-part elapsed time per step (Vlasov / tree / PM, each
including its communication) for any Table 2 run configuration.  The
*structure* is first-principles:

* Vlasov compute — local phase-space cells x sweeps x flops/cell over the
  paper's measured per-CMG sustained throughputs (Table 1);
* Vlasov comm — ghost-layer face exchanges of exactly the production
  message sizes, on the Tofu-D link model, with TNI sharing between the
  processes of one node;
* tree — Phantom-GRAPE interaction rate (paper: 1.2e9/s/core) times an
  interaction count that grows logarithmically with the global particle
  count (deeper trees), plus boundary-shell particle exchange;
* PM — scalable assignment/interpolation plus an FFT whose parallelism is
  capped at n_x * n_y processes (the 2-D pencil decomposition of SSL II,
  see :mod:`repro.parallel.fft_decomp`) plus the layout-change alltoalls.

Absolute constants (flops/cell, interactions/particle) are calibrated so
the S2 part fractions match the paper's Figure 7 (Vlasov ~ 70% of the
step); every *ratio* — the weak/strong efficiencies of Tables 3-4, the
shape of Figure 7, the U1024/H1024 time-to-solution ratio — is then a
genuine model output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import TYPE_CHECKING

from . import a64fx, tofu

if TYPE_CHECKING:  # pragma: no cover - annotation-only, avoids a cycle
    from ..scaling.runs import RunConfig

# ---------------------------------------------------------------------------
# calibration constants (see module docstring; derivations in comments)
# ---------------------------------------------------------------------------

#: Directional sweeps per step: 3 velocity (half-kicks merged across
#: steps) + 3 spatial.
SWEEPS_PER_STEP = 6

#: Flops per cell per 1-D SL-MPP5 sweep: 5 quintic coefficient
#: evaluations (~60), MP bounds and medians (~80), positivity and update
#: (~30), sign/branch overhead (~30).
FLOPS_PER_CELL_SWEEP = 200.0

#: Ghost layers exchanged per side (order 5 at CFL ~ 1, cf.
#: repro.parallel.exchange.required_ghost).
GHOST_LAYERS = 4

#: Tree interactions per particle: BASE + SLOPE * log2(N_total).  With
#: theta = 0.5 and the paper's particle loads, TreePM walks run a few
#: thousand interactions per particle; the log term models the deeper
#: tree of larger runs.  Calibrated to put the tree at ~21% of the S2
#: step (paper Fig. 7) and reproduce the 77-88% group efficiencies.
TREE_INT_BASE = 1040.0
TREE_INT_SLOPE = 60.0

#: Fraction of full pairwise rate the tree part sustains end-to-end
#: (walk overhead and interaction-list building; the kernel itself runs
#: at the Phantom-GRAPE rate).
TREE_KERNEL_EFFICIENCY = 0.25

#: Bytes per particle in boundary exchanges (position + mass, float64).
PARTICLE_BYTES = 32

#: PM mass assignment + interpolation memory traffic per particle:
#: TSC touches 27 cells, read+write 8 B each, assignment + 3 force
#: interpolations.
PM_ASSIGN_BYTES_PER_PARTICLE = 27 * 16 * 4

#: Sustained FFT rate per CMG [flop/s] — large multi-node FFTs are
#: transpose/communication bound; ~1% of DP peak end-to-end.
FFT_RATE_PER_CMG = 0.01 * a64fx.PEAK_DP_PER_CMG

#: End-to-end multiplier of the ideal FFT + transpose time (pencil
#: setup, data reordering, multi-pass buffer copies inside SSL II),
#: calibrated with PM_BASE_OVERHEAD so the S2 part fractions and the
#: PM column of Table 3 match the paper.
PM_OVERHEAD_FACTOR = 4.0

#: Constant per-step PM software overhead [s] (pencil setup, buffers).
PM_BASE_OVERHEAD = 0.005

#: Fraction of streaming memory bandwidth the scattered particle <-> mesh
#: accesses achieve (TSC deposits/reads hit 27 cache lines per particle).
PM_ASSIGN_EFFICIENCY = 0.15

#: Tree load-imbalance model: clustered particles make the heaviest
#: domain slower than the mean by 1 + COEFF / sqrt(local particles /
#: 1e6); shrinking domains (strong scaling) sample the clustering less
#: fairly.  Calibrated to the 77-97% band of Tables 3-4's tree rows.
TREE_IMBALANCE_COEFF = 0.25

#: Ghost pack/unpack memory passes accompanying each ghost exchange
#: (the paper: spatial sweeps "include the data copy from/to the ghost
#: mesh grid", which visibly lowers Table 1's spatial throughputs).
GHOST_PACK_PASSES = 3.0

#: Network contention growth with job size: messaging slows by
#: (1 + CONTENTION_SLOPE * log2(nodes / 288)) relative to the S2-size
#: partition — adaptive-routing congestion and OS jitter at scale.
CONTENTION_SLOPE = 0.03

#: FFT flop count constant: 5 N log2(N) per complex length-N transform.
FFT_FLOP_CONST = 5.0

#: Forward + inverse transform passes per Poisson solve.
FFT_PASSES = 2


@dataclass(frozen=True)
class StepBreakdown:
    """Predicted elapsed time per step, by part [seconds]."""

    vlasov: float
    tree: float
    pm: float

    @property
    def total(self) -> float:
        """Whole-step time."""
        return self.vlasov + self.tree + self.pm

    def fractions(self) -> dict[str, float]:
        """Part fractions of the total."""
        t = self.total
        return {"vlasov": self.vlasov / t, "tree": self.tree / t, "pm": self.pm / t}


# ---------------------------------------------------------------------------
# part models
# ---------------------------------------------------------------------------


def vlasov_compute_time(run: RunConfig) -> float:
    """Local advection time per step, using Table 1 sustained rates."""
    cells = run.local_cells
    n_cmg = run.cmg_per_proc
    total = 0.0
    per_sweep = cells * FLOPS_PER_CELL_SWEEP
    for direction in a64fx.VELOCITY_DIRECTIONS + a64fx.SPATIAL_DIRECTIONS:
        rate = a64fx.TABLE1[direction].best() * 1.0e9 * n_cmg
        total += per_sweep / rate
    return total * (SWEEPS_PER_STEP / 6.0)


def contention_factor(run: RunConfig) -> float:
    """Messaging slowdown of large partitions relative to S2's 288 nodes."""
    return 1.0 + CONTENTION_SLOPE * max(0.0, math.log2(run.n_node / 288.0))


def vlasov_comm_time(run: RunConfig) -> float:
    """Ghost exchange time per step (3 spatial sweeps, 2 faces each),
    including the pack/unpack memory copies on both sides."""
    lx, ly, lz = run.local_nx
    nu3 = run.nu**3
    # each process can drive TNI_PER_NODE / procs_per_node streams
    streams = max(1.0, tofu.TNI_PER_NODE / run.procs_per_node)
    total = 0.0
    for face_cells in (ly * lz, lx * lz, lx * ly):
        nbytes = GHOST_LAYERS * face_cells * nu3 * 4
        # two directions, overlappable across the node's streams
        total += 2.0 * tofu.p2p_time(nbytes, hops=1, streams=streams) * contention_factor(run)
        total += GHOST_PACK_PASSES * 2.0 * nbytes / (
            a64fx.BANDWIDTH_PER_CMG * run.cmg_per_proc
        )
    # the per-step global timestep reduction
    total += tofu.allreduce_time(8, run.n_procs)
    return total


def tree_interactions_per_particle(run: RunConfig) -> float:
    """Modeled walk length: deeper trees at larger global N."""
    return TREE_INT_BASE + TREE_INT_SLOPE * math.log2(run.n_cdm)


def tree_time(run: RunConfig) -> float:
    """Short-range force time per step: kernel + boundary exchange."""
    n_loc = run.local_particles
    rate = (
        a64fx.PHANTOM_GRAPE_RATE_PER_CORE
        * a64fx.CORES_PER_CMG
        * run.cmg_per_proc
        * TREE_KERNEL_EFFICIENCY
    )
    t_kernel = n_loc * tree_interactions_per_particle(run) / rate
    t_kernel *= 1.0 + TREE_IMBALANCE_COEFF / math.sqrt(n_loc / 1.0e6)

    # boundary shell: particles within r_cut of each face, both directions
    lx, ly, lz = run.local_nx
    box_cells = run.nx
    r_cut_cells = 4.5 * 1.25 * (run.nx / run.n_pm_side)  # in Vlasov cells
    density = run.n_cdm / run.nx**3  # particles per Vlasov cell
    streams = max(1.0, tofu.TNI_PER_NODE / run.procs_per_node)
    t_comm = 0.0
    for face_cells in (ly * lz, lx * lz, lx * ly):
        shell = min(r_cut_cells, box_cells) * face_cells * density
        nbytes = int(shell * PARTICLE_BYTES)
        t_comm += 2.0 * tofu.p2p_time(nbytes, hops=1, streams=streams)
    return t_kernel + t_comm


def pm_time(run: RunConfig) -> float:
    """PM part per step: assignment/interpolation + 2-D-decomposed FFT."""
    n_loc = run.local_particles
    n_cmg = run.cmg_per_proc

    # scalable particle <-> mesh traffic (assignment + force interpolation)
    t_assign = n_loc * PM_ASSIGN_BYTES_PER_PARTICLE / (
        a64fx.BANDWIDTH_PER_CMG * n_cmg * PM_ASSIGN_EFFICIENCY
    )

    # FFT: parallelism capped at n_x * n_y ranks
    n_pm = run.n_pm_side
    fft_ranks = min(run.n_procs, run.fft_parallelism)
    flops = FFT_PASSES * FFT_FLOP_CONST * n_pm**3 * 3.0 * math.log2(max(n_pm, 2))
    t_fft = flops / fft_ranks / (FFT_RATE_PER_CMG * n_cmg)

    # transpose alltoalls inside the FFT: the whole mesh crosses the
    # partition's bisection twice per pass
    mesh_bytes = n_pm**3 * 8  # float64 mesh
    bisection_links = max(run.n_node, 2) ** (2.0 / 3.0)
    t_comm = (
        FFT_PASSES * 2.0 * mesh_bytes / (bisection_links * tofu.LINK_BANDWIDTH)
    ) * contention_factor(run)

    return (
        t_assign
        + PM_OVERHEAD_FACTOR * (t_fft + t_comm)
        + PM_BASE_OVERHEAD
    )


def predict_step(run: RunConfig) -> StepBreakdown:
    """Full per-step breakdown for one run configuration."""
    return StepBreakdown(
        vlasov=vlasov_compute_time(run) + vlasov_comm_time(run),
        tree=tree_time(run),
        pm=pm_time(run),
    )


def predict_io_time(run: RunConfig, n_snapshots: int = 3) -> float:
    """End-to-end I/O time: particle dumps + moment meshes.

    Snapshots store the full particle phase space (48 B each) and the
    neutrino *moment* fields (the 6-D f itself is never dumped — the
    U1024 f alone would be 1.6 EB); a large job on Fugaku's layered
    storage sustains ~65 GB/s aggregate, which reproduces the paper's
    measured 733-782 s for a handful of snapshots.
    """
    io_bandwidth = 65.0e9  # bytes/s aggregate
    particle_bytes = run.n_cdm * 48  # pos+vel (6 x float64)
    moment_bytes = run.nx**3 * 4 * 10  # density, velocity, dispersion maps
    return n_snapshots * (particle_bytes + moment_bytes) / io_bandwidth
