"""Tofu interconnect D network model (paper §6.1, §8).

Fugaku's nodes are connected by a six-dimensional mesh/torus of shape
(24, 23, 24, 2, 3, 2) = 158,976 nodes.  The paper maps MPI processes so
that "MPI communications between physically adjacent domains are kept
fenced within a single hop" — the 3-D process grid embeds into the 6-D
torus by pairing axes: (x, a), (y, b), (z, c) with the small axes
(2, 3, 2) acting as the fast dimension of each pair.

Public Tofu-D characteristics used for the time model:

* link bandwidth 6.8 GB/s per direction per link;
* each node has 6 TNIs (network interfaces) -> injection bandwidth
  ~40.8 GB/s, but a single point-to-point stream uses one link;
* put latency ~0.5 us nearest-neighbor, ~1 us across the system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Tofu-D torus shape on Fugaku (paper §6.1).
TOFU_SHAPE = (24, 23, 24, 2, 3, 2)
#: Which of the six axes are full tori (wrap-around); the B axis (23) is a
#: mesh in deployed Fugaku but we treat all axes as tori for hop counting —
#: the distinction never matters for nearest-neighbor mappings.
#: Link bandwidth per direction [bytes/s].
LINK_BANDWIDTH = 6.8e9
#: Number of network interfaces per node (simultaneous injection streams).
TNI_PER_NODE = 6
#: Nearest-neighbor put latency [s].
LATENCY_NEAR = 0.5e-6
#: Far-end latency [s].
LATENCY_FAR = 1.0e-6


def total_nodes() -> int:
    """158,976 — Fugaku's full system."""
    return int(np.prod(TOFU_SHAPE))


@dataclass(frozen=True)
class TorusMapping:
    """Embedding of a 3-D process grid into the 6-D torus.

    The three process axes map onto the axis pairs (X, A), (Y, B), (Z, C):
    process coordinate p along the first axis occupies torus coordinates
    (p // 2 on X, p % 2 on A), etc.  Nearest process-grid neighbors are
    then at most 1 torus hop apart (within a pair, stepping the small axis
    or the big axis), which is the property the paper engineered.

    ``procs_per_node`` processes (1, 2 or 4 CMG groups) share each node;
    consecutive ranks along the innermost process axis share first.
    """

    n_proc: tuple[int, int, int]
    procs_per_node: int = 2

    def __post_init__(self) -> None:
        if self.procs_per_node not in (1, 2, 4):
            raise ValueError("procs_per_node must be 1, 2 or 4")
        if any(n < 1 for n in self.n_proc):
            raise ValueError("process grid extents must be >= 1")

    @property
    def n_nodes(self) -> int:
        """Nodes required."""
        total = int(np.prod(self.n_proc))
        if total % self.procs_per_node:
            raise ValueError("process count not divisible by procs per node")
        return total // self.procs_per_node

    def fits_fugaku(self) -> bool:
        """Whether the job fits on the full system."""
        return self.n_nodes <= total_nodes()

    def node_coords(self, proc_coords: tuple[int, int, int]) -> tuple[int, ...]:
        """Torus coordinates of the node hosting a process.

        Processes sharing a node: the innermost (z) process coordinate is
        divided by procs_per_node first.  Each process axis snakes
        (boustrophedon order) through its (big, small) torus-axis pair so
        that *consecutive* processes always differ by one hop — stepping
        the small axis inside a block, stepping the big axis at block
        boundaries while the small coordinate stays put.  This is the
        embedding property the paper engineered ("kept fenced within a
        single hop").
        """
        px, py, pz = proc_coords
        pz_node = pz // self.procs_per_node
        pairs = ((0, 3), (1, 4), (2, 5))  # (big axis, small axis) indices
        coords = [0] * 6
        for p, (big, small) in zip((px, py, pz_node), pairs):
            size_small = TOFU_SHAPE[small]
            block, rem = divmod(p, size_small)
            coords[big] = block % TOFU_SHAPE[big]
            coords[small] = rem if block % 2 == 0 else size_small - 1 - rem
        return tuple(coords)

    def hops(
        self, a: tuple[int, int, int], b: tuple[int, int, int]
    ) -> int:
        """Torus hop count between the nodes of two processes."""
        ca, cb = self.node_coords(a), self.node_coords(b)
        total = 0
        for d, (x, y) in enumerate(zip(ca, cb)):
            n = TOFU_SHAPE[d]
            delta = abs(x - y)
            total += min(delta, n - delta)
        return total

    def max_neighbor_hops(self) -> int:
        """Largest hop distance between process-grid nearest neighbors.

        1 when the embedding is perfect (the paper's configurations);
        grows only if a process axis outruns its torus axis pair.
        """
        worst = 0
        nx, ny, nz = self.n_proc
        probes = []
        for axis, n in enumerate(self.n_proc):
            if n == 1:
                continue
            base = [0, 0, 0]
            for c in range(min(n - 1, 64)):
                a = list(base)
                b = list(base)
                a[axis] = c
                b[axis] = c + 1
                probes.append((tuple(a), tuple(b)))
        for a, b in probes:
            h = self.hops(a, b)
            if a[2] // self.procs_per_node == b[2] // self.procs_per_node and a[:2] == b[:2]:
                h = 0  # same node
            worst = max(worst, h)
        return worst


def p2p_time(nbytes: int, hops: int = 1, streams: int = 1) -> float:
    """Point-to-point message time: latency + serialization on one link.

    ``streams`` > 1 models concurrent use of multiple TNIs (up to 6).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    latency = LATENCY_NEAR if hops <= 1 else LATENCY_FAR * math.log2(1 + hops)
    bw = LINK_BANDWIDTH * min(max(streams, 1), TNI_PER_NODE)
    return latency + nbytes / bw


def allreduce_time(nbytes: int, n_ranks: int) -> float:
    """Tree allreduce: log2(P) latency stages + bandwidth term."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    stages = max(1, math.ceil(math.log2(n_ranks)))
    return stages * (LATENCY_NEAR + nbytes / LINK_BANDWIDTH)


def alltoall_time(nbytes_per_rank: int, n_ranks: int, streams: int = TNI_PER_NODE) -> float:
    """Alltoall within an n-rank group.

    Each rank injects (n-1) messages of nbytes_per_rank/(n) each; the
    aggregate is bisection-limited, modeled as serialized injection over
    the available TNIs plus a per-peer latency sweep.
    """
    if n_ranks < 2:
        return 0.0
    per_peer = nbytes_per_rank / n_ranks
    inject = (n_ranks - 1) * per_peer / (LINK_BANDWIDTH * streams)
    return (n_ranks - 1) * LATENCY_NEAR / TNI_PER_NODE + inject
