"""Parameter sweeps as a first-class, multi-tenant workload.

The campaign layer turns the single-run orchestration of
:mod:`repro.runtime` into the paper's actual operating mode — a *suite*
of runs (mass hierarchies × resolutions × schemes, Table 2) executed
concurrently under a shared CPU budget, with a persistent per-run state
manifest and campaign-level resume.  Exposed on the CLI as ``repro
campaign <spec>`` / ``repro campaign resume <dir>``; see
``docs/CAMPAIGN.md`` for the spec format, the executor interface, and
the exit-code semantics.
"""

from .aggregate import aggregate_rows, format_table
from .config import EXECUTOR_NAMES, CampaignConfig, SweepPoint
from .executors import Executor, ProcessExecutor, ThreadExecutor, build_executor
from .manifest import MANIFEST_NAME, RUN_STATES, CampaignManifest
from .scheduler import RUN_CONFIG_NAME, RUNS_DIR, Campaign

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignManifest",
    "SweepPoint",
    "Executor",
    "ProcessExecutor",
    "ThreadExecutor",
    "build_executor",
    "aggregate_rows",
    "format_table",
    "EXECUTOR_NAMES",
    "MANIFEST_NAME",
    "RUN_STATES",
    "RUNS_DIR",
    "RUN_CONFIG_NAME",
]
