"""Parameter sweeps as a first-class, multi-tenant workload.

The campaign layer turns the single-run orchestration of
:mod:`repro.runtime` into the paper's actual operating mode — a *suite*
of runs (mass hierarchies × resolutions × schemes, Table 2) executed
concurrently under a shared CPU budget, with a persistent per-run state
manifest, campaign-level resume, and a supervision tier (leases,
failure-classified retries, resource watchdogs — see
:mod:`repro.campaign.supervision`) that keeps a multi-day sweep alive
through worker deaths and stalled runs.  Exposed on the CLI as ``repro
campaign <spec>`` / ``repro campaign resume <dir>`` / ``repro campaign
worker <dir>``; see ``docs/CAMPAIGN.md`` for the spec format, the
executor interface, and the exit-code semantics.
"""

from .aggregate import aggregate_rows, format_table
from .config import (
    EXECUTOR_NAMES,
    CampaignConfig,
    LimitsConfig,
    RetryConfig,
    SweepPoint,
)
from .executors import Executor, ProcessExecutor, ThreadExecutor, build_executor
from .manifest import MANIFEST_NAME, RUN_STATES, CampaignManifest
from .remote import QueueExecutor, run_worker
from .scheduler import RUN_CONFIG_NAME, RUNS_DIR, SUPERVISOR_LOG, Campaign
from .supervision import (
    FAILURE_CLASSES,
    LEASE_NAME,
    ExecutorUnavailable,
    LeaseExpired,
    Outcome,
    RetryPolicy,
    RunLease,
    Supervisor,
    classify_exit,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignManifest",
    "SweepPoint",
    "Executor",
    "ProcessExecutor",
    "ThreadExecutor",
    "QueueExecutor",
    "build_executor",
    "run_worker",
    "aggregate_rows",
    "format_table",
    "LimitsConfig",
    "RetryConfig",
    "RunLease",
    "RetryPolicy",
    "Supervisor",
    "Outcome",
    "LeaseExpired",
    "ExecutorUnavailable",
    "classify_exit",
    "EXECUTOR_NAMES",
    "FAILURE_CLASSES",
    "LEASE_NAME",
    "MANIFEST_NAME",
    "RUN_STATES",
    "RUNS_DIR",
    "RUN_CONFIG_NAME",
    "SUPERVISOR_LOG",
]
