"""Supervised campaign execution: leases, failure classes, watchdogs.

The paper's flagship run held 147,456 Fugaku nodes for days; at that
scale restart-and-retry is engineered into the *job* layer, not hoped
for.  This module is that layer for the campaign tier — everything the
scheduler needs to treat a run as a supervised lease-holding job rather
than a fire-and-forget subprocess:

:class:`RunLease`
    An atomic ``lease.json`` per run directory (owner, nonce, deadline,
    attempt).  Acquisition is exclusive-create; an expired lease may be
    *broken* and retaken, with a nonce re-read deciding races between
    two breakers.  The lease is the single source of truth for "someone
    is executing this run" — the scheduler's monitor renews it while
    the run's telemetry shows progress, a ``repro campaign worker``
    renews it from its heartbeat thread, and a lease that stops being
    renewed marks its run orphaned and reclaimable.

:func:`classify_exit`
    Maps every terminal outcome onto a **failure class**: ``done``
    (exit 0), ``resumable`` (exit 75 — an orderly drain; the run's
    checkpoint chain continues it), ``permanent`` (exit 70 — a guard
    abort a human must look at), ``transient`` (signal death, lease
    expiry, spawn failure — retry and it will likely just work).

:class:`RetryPolicy`
    Capped exponential backoff with deterministic seeded jitter, plus
    the per-point and per-campaign attempt budgets
    (:class:`~repro.campaign.config.RetryConfig`).

:class:`Supervisor`
    The scheduler-side watchdog.  One :meth:`attempt` executes one run
    under supervision: lease held, monitor loop watching telemetry
    mtime (the heartbeat the runner already provides), per-run
    wall-clock and RSS budgets (:class:`~repro.campaign.config.LimitsConfig`)
    enforced by a drain→kill ladder (``DRAIN`` flag + SIGTERM, then
    SIGKILL after the grace window), and the terminal exit code
    classified into an :class:`Outcome`.  Every supervision action is
    published as a ``lease_*`` / ``supervision_*`` event to the
    campaign's ``supervisor.jsonl`` stream.

Retried ``transient``/``resumable`` attempts re-enter the run's own
checkpoint chain through ``SimulationRunner``'s auto-resume, so a
retried campaign stays **bitwise-identical** to an unfaulted one — the
property the campaign chaos drill asserts.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..runtime.runner import (
    DRAIN_NAME,
    EXIT_COMPLETE,
    EXIT_GUARD_ABORT,
    EXIT_RESUMABLE,
    TELEMETRY_NAME,
)
from .config import LimitsConfig, RetryConfig

__all__ = [
    "FAILURE_CLASSES",
    "LEASE_NAME",
    "LeaseExpired",
    "ExecutorUnavailable",
    "Outcome",
    "RetryPolicy",
    "RunLease",
    "Supervisor",
    "classify_exit",
    "read_last_rss_mb",
]

LEASE_NAME = "lease.json"

#: Every failure class an attempt can land in.
FAILURE_CLASSES = ("done", "transient", "resumable", "permanent")

#: Consecutive spawn failures of one executor before the scheduler
#: degrades to the next backend in the chain (queue→processes→threads).
DEGRADE_AFTER = 2


class LeaseExpired(Exception):
    """A run's lease stopped being renewed: the holder is presumed dead."""


class ExecutorUnavailable(Exception):
    """The execution backend itself is broken (spawn failure, no worker)."""


def classify_exit(exit_code: int | None) -> str:
    """Map one terminal exit code onto its failure class.

    ``None`` (no exit code — the attempt died before producing one:
    lease expiry, spawn failure) and negative codes (signal death) are
    ``transient``; unknown positive codes are ``transient`` too, on the
    theory that anything that is not a deliberate contract code was an
    environmental accident worth one more try.
    """
    if exit_code == EXIT_COMPLETE:
        return "done"
    if exit_code == EXIT_RESUMABLE:
        return "resumable"
    if exit_code == EXIT_GUARD_ABORT:
        return "permanent"
    return "transient"


@dataclass
class Outcome:
    """One supervised attempt's terminal result."""

    exit_code: int | None
    cls: str
    reason: str = ""
    spawn_failure: bool = False

    @property
    def final(self) -> bool:
        """Whether this outcome ends the point's dispatch loop."""
        return self.cls in ("done", "permanent")

    def as_dict(self) -> dict:
        return {"exit_code": self.exit_code, "class": self.cls,
                "reason": self.reason}


class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter."""

    def __init__(self, config: RetryConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._campaign_spent = 0
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        c = self.config
        base = min(c.backoff_cap, c.backoff_base * 2.0 ** max(0, attempt - 1))
        with self._lock:
            jitter = float(self._rng.random())
        return base * (1.0 + c.jitter * jitter)

    def should_retry(self, outcome: Outcome, attempt: int) -> bool:
        """Whether a point on its ``attempt``-th try gets another one.

        Consults the failure class, the per-point budget, and the
        shared per-campaign budget (charged one token per granted
        retry, atomically — K concurrent dispatch loops share it).
        """
        if outcome.final:
            return False
        if outcome.cls == "resumable" and not self.config.retry_resumable:
            return False
        if attempt >= self.config.max_attempts:
            return False
        if self.config.campaign_budget is not None:
            with self._lock:
                if self._campaign_spent >= self.config.campaign_budget:
                    return False
                self._campaign_spent += 1
        return True


class RunLease:
    """An atomic per-run-directory lease: ``lease.json``.

    Acquisition is ``O_CREAT | O_EXCL`` — exactly one claimant wins a
    free lease.  A lease whose deadline has passed may be broken and
    retaken by anyone: the breaker writes a replacement via tmp +
    ``os.replace`` and then re-reads the file; the nonce says which of
    two simultaneous breakers actually won.  Renewal and release verify
    ownership the same way, so a reclaimed lease cannot be resurrected
    by its previous (stalled) holder.
    """

    def __init__(self, run_dir: Path, data: dict) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / LEASE_NAME
        self.data = data

    # -- construction ---------------------------------------------------

    @classmethod
    def acquire(cls, run_dir: str | Path, owner: str, duration: float,
                attempt: int = 1) -> "RunLease | None":
        """Claim the run's lease; ``None`` when a live holder exists.

        An expired lease on disk is broken and retaken atomically.
        """
        run_dir = Path(run_dir)
        path = run_dir / LEASE_NAME
        now = time.time()
        data = {
            "owner": owner,
            "nonce": uuid.uuid4().hex,
            "pid": os.getpid(),
            "acquired": now,
            "deadline": now + float(duration),
            "duration": float(duration),
            "attempt": int(attempt),
        }
        payload = json.dumps(data, indent=2) + "\n"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = cls.load(run_dir)
            if existing is not None and not existing.expired():
                return None
            # break the expired lease: last replace wins, nonce decides
            tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
            tmp.write_text(payload)
            os.replace(tmp, path)
            survivor = cls.load(run_dir)
            if survivor is None or survivor.data.get("nonce") != data["nonce"]:
                return None  # a racing breaker won
            return cls(run_dir, data)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return cls(run_dir, data)

    @classmethod
    def load(cls, run_dir: str | Path) -> "RunLease | None":
        """The lease currently on disk (``None`` if absent/unreadable)."""
        path = Path(run_dir) / LEASE_NAME
        try:
            data = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        return cls(run_dir, data)

    # -- state ----------------------------------------------------------

    @property
    def owner(self) -> str:
        return str(self.data.get("owner", ""))

    @property
    def attempt(self) -> int:
        return int(self.data.get("attempt", 1))

    def expired(self, now: float | None = None) -> bool:
        """Whether the deadline has passed (the holder stopped renewing)."""
        now = time.time() if now is None else now
        return now > float(self.data.get("deadline", 0.0))

    def _owned_on_disk(self) -> bool:
        current = RunLease.load(self.run_dir)
        return (current is not None
                and current.data.get("nonce") == self.data.get("nonce"))

    def renew(self, duration: float | None = None) -> bool:
        """Push the deadline out; ``False`` if the lease was reclaimed."""
        if not self._owned_on_disk():
            return False
        duration = float(duration if duration is not None
                         else self.data.get("duration", 30.0))
        self.data["deadline"] = time.time() + duration
        tmp = self.path.with_name(f".{self.path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.data, indent=2) + "\n")
        os.replace(tmp, self.path)
        return True

    def release(self) -> None:
        """Drop the lease (only if still ours); idempotent."""
        if self._owned_on_disk():
            self.path.unlink(missing_ok=True)

    @staticmethod
    def break_lease(run_dir: str | Path) -> None:
        """Forcibly delete whatever lease is on disk (reclaim)."""
        (Path(run_dir) / LEASE_NAME).unlink(missing_ok=True)


# ----------------------------------------------------------------------
# heartbeat helpers
# ----------------------------------------------------------------------


def heartbeat_age(run_dir: str | Path, since: float,
                  include_lease: bool = True) -> float:
    """Seconds since the run last showed life, relative to ``since``.

    Life is the newest of: the lease file's mtime (renewals), the
    telemetry stream's mtime (the runner appends one record per step),
    and ``since`` itself (dispatch time — a run that has not produced
    its first record yet is not stalled, just starting).

    ``include_lease=False`` restricts life to *run progress* (telemetry
    only).  The supervisor's own monitor must use this form: it renews
    the lease itself, so counting the lease mtime would declare its own
    renewals to be the run's heartbeat and a frozen run would never
    look stalled.
    """
    run_dir = Path(run_dir)
    newest = since
    names = (LEASE_NAME, TELEMETRY_NAME) if include_lease else (TELEMETRY_NAME,)
    for name in names:
        try:
            newest = max(newest, (run_dir / name).stat().st_mtime)
        except OSError:
            pass
    return time.time() - newest


def read_last_rss_mb(telemetry_path: str | Path) -> float | None:
    """Peak RSS [MB] from the newest complete telemetry record.

    Reads only the file's tail (a week-long stream never needs to be
    scanned) and tolerates torn final lines; ``None`` when no record
    carries an ``rss_mb`` yet.
    """
    try:
        with open(telemetry_path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - 65536))
            tail = fh.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    for line in reversed(tail.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "rss_mb" in record:
            return float(record["rss_mb"])
    return None


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------


@dataclass
class _Attempt:
    """Bookkeeping for one in-flight supervised attempt."""

    run_id: str
    run_dir: Path
    started: float
    drain_requested_at: float | None = None
    killed: bool = False
    violations: list = field(default_factory=list)


class Supervisor:
    """The scheduler-side watchdog: leases, budgets, classification.

    One supervisor lives for one scheduler invocation; it owns the
    campaign's retry policy, the degradation counters, and the event
    stream (``sink(kind, **fields)``, normally the campaign's
    ``supervisor.jsonl`` writer).  :meth:`attempt` blocks (it runs on a
    scheduler worker thread) for the duration of one supervised run.
    """

    def __init__(self, campaign_dir: str | Path,
                 limits: LimitsConfig | None = None,
                 retry: RetryConfig | None = None,
                 sink=None, owner: str | None = None) -> None:
        self.campaign_dir = Path(campaign_dir)
        self.limits = limits or LimitsConfig()
        self.retry = retry or RetryConfig()
        self.policy = RetryPolicy(self.retry)
        self.owner = owner or f"sched-{os.getpid()}"
        self._sink = sink
        self._spawn_failures: dict[int, int] = {}  # id(executor) -> streak
        self._lock = threading.Lock()

    # -- events ---------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Publish one supervision event (never raises)."""
        if self._sink is None:
            return
        try:
            self._sink(kind, **fields)
        except Exception:  # pragma: no cover - defensive
            pass

    # -- degradation ----------------------------------------------------

    def note_spawn_result(self, executor, failed: bool) -> int:
        """Track consecutive spawn failures per executor instance."""
        with self._lock:
            key = id(executor)
            if failed:
                self._spawn_failures[key] = self._spawn_failures.get(key, 0) + 1
            else:
                self._spawn_failures[key] = 0
            return self._spawn_failures[key]

    def should_degrade(self, executor) -> bool:
        """Whether this executor's spawn-failure streak warrants swapping."""
        with self._lock:
            return self._spawn_failures.get(id(executor), 0) >= DEGRADE_AFTER

    # -- the supervised attempt -----------------------------------------

    def attempt(self, executor, run_id: str, run_dir: Path,
                config_path: Path, max_steps: int | None,
                attempt: int) -> Outcome:
        """Execute one run under full supervision; classify the result."""
        run_dir = Path(run_dir)
        lim = self.limits
        # a DRAIN flag left by a previous over-budget drain must not
        # immediately re-drain the retry
        (run_dir / DRAIN_NAME).unlink(missing_ok=True)

        stale = RunLease.load(run_dir)
        if stale is not None:
            if not stale.expired():
                return Outcome(None, "transient", reason="lease_held")
            self.emit("lease_expired", run_id=run_id, owner=stale.owner,
                      attempt=stale.attempt)
            RunLease.break_lease(run_dir)
            self.emit("lease_reclaimed", run_id=run_id, by=self.owner)

        remote = getattr(executor, "remote", False)
        lease = None
        if not remote:
            lease = RunLease.acquire(run_dir, self.owner, lim.lease_seconds,
                                     attempt=attempt)
            if lease is None:
                return Outcome(None, "transient", reason="lease_held")
            self.emit("lease_acquired", run_id=run_id, owner=self.owner,
                      attempt=attempt)
        self.emit("supervision_dispatch", run_id=run_id, attempt=attempt,
                  executor=executor.name)

        result: dict = {}
        done = threading.Event()

        def _execute() -> None:
            try:
                result["code"] = executor.execute(run_dir, config_path,
                                                  max_steps)
            except LeaseExpired as exc:
                result["lease_expired"] = str(exc)
            except Exception as exc:  # spawn/backend failure
                result["error"] = f"{type(exc).__name__}: {exc}"
                result["unavailable"] = isinstance(exc, ExecutorUnavailable)
            finally:
                done.set()

        state = _Attempt(run_id, run_dir, started=time.time())
        thread = threading.Thread(
            target=_execute, name=f"exec-{run_id}", daemon=True
        )
        thread.start()
        try:
            while not done.wait(timeout=lim.poll_seconds):
                self._monitor_tick(executor, state, lease)
        finally:
            if lease is not None:
                lease.release()
                self.emit("lease_released", run_id=run_id, owner=self.owner)
        return self._classify(executor, state, result, attempt)

    # -- monitor internals ----------------------------------------------

    def _monitor_tick(self, executor, state: _Attempt,
                      lease: RunLease | None) -> None:
        """One watchdog pass: heartbeat, budgets, the drain→kill ladder."""
        lim = self.limits
        now = time.time()
        if getattr(executor, "remote", False):
            return  # the queue executor polls/reclaims on its own
        age = heartbeat_age(state.run_dir, state.started,
                            include_lease=False)
        stalled = age > lim.lease_seconds
        if lease is not None and not stalled:
            # renew lazily — only once the deadline is within half the
            # lease duration, not on every tick (a rewrite per 0.25 s
            # poll is measurable disk traffic at K runs in flight)
            deadline = float(lease.data.get("deadline", 0.0))
            if now > deadline - lim.lease_seconds / 2.0:
                lease.renew(lim.lease_seconds)
        over_wall = (lim.wall_seconds is not None
                     and now - state.started > lim.wall_seconds)
        over_rss = False
        if lim.rss_mb is not None:
            # only trust telemetry appended by THIS attempt: the tail
            # record of a drained previous attempt still carries its
            # ballast-inflated peak RSS, and acting on it would drain
            # every retry at startup forever
            tpath = state.run_dir / TELEMETRY_NAME
            try:
                fresh = tpath.stat().st_mtime >= state.started
            except OSError:
                fresh = False
            if fresh:
                rss = read_last_rss_mb(tpath)
                over_rss = rss is not None and rss > lim.rss_mb
        if not (stalled or over_wall or over_rss):
            return
        violation = ("stalled" if stalled
                     else "over_wall" if over_wall else "over_rss")
        if violation not in state.violations:
            state.violations.append(violation)
            self.emit(f"supervision_{violation}", run_id=state.run_id,
                      heartbeat_age=round(age, 3),
                      elapsed=round(now - state.started, 3))
        if state.drain_requested_at is None:
            # rung 1: ask nicely — DRAIN flag (any executor, any host
            # sharing the filesystem) plus SIGTERM when a handle exists
            (state.run_dir / DRAIN_NAME).touch()
            executor.request_drain(state.run_dir)
            state.drain_requested_at = now
            self.emit("supervision_drain", run_id=state.run_id,
                      reason=violation)
        elif (not state.killed
              and now - state.drain_requested_at > lim.grace_seconds):
            # rung 2: the drain did not land inside the grace window
            if executor.request_kill(state.run_dir):
                state.killed = True
                self.emit("supervision_kill", run_id=state.run_id,
                          reason=violation)

    def _classify(self, executor, state: _Attempt, result: dict,
                  attempt: int) -> Outcome:
        """Fold the execute thread's result into a classified Outcome."""
        if "lease_expired" in result:
            self.emit("lease_expired", run_id=state.run_id,
                      detail=result["lease_expired"])
            self.note_spawn_result(executor, failed=False)
            outcome = Outcome(None, "transient", reason="lease_expired")
        elif "error" in result:
            self.note_spawn_result(executor, failed=True)
            outcome = Outcome(None, "transient", reason=result["error"],
                              spawn_failure=True)
        else:
            self.note_spawn_result(executor, failed=False)
            code = result.get("code")
            reason = "exit"
            if state.killed:
                reason = f"killed:{state.violations[0]}"
            elif state.violations:
                reason = f"drained:{state.violations[0]}"
            outcome = Outcome(code, classify_exit(code), reason=reason)
        self.emit("supervision_outcome", run_id=state.run_id,
                  attempt=attempt, **outcome.as_dict())
        return outcome
