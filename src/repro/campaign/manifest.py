"""The persistent campaign manifest: ``campaign.json``.

One atomic JSON document per campaign directory, rewritten (tmp +
``os.replace``, the same dance as ``run.json`` and the checkpoints) at
**every** per-run state transition — a SIGKILL between any two
transitions leaves a complete, parseable manifest whose states are at
worst one transition stale, which resume reconciles against each run's
own ``run.json``.

Per-run states (:data:`RUN_STATES`):

``queued``
    Materialized on disk, not yet handed to an executor.
``running``
    Handed to an executor; a manifest found in this state was
    interrupted mid-run (scheduler killed) and is retried on resume.
``failed``
    The executor returned nonzero; ``exit_code`` records the runtime
    layer's contract value (75 resumable drain, 70 guard abort) or the
    raw negative signal code of a killed subprocess.
``done``
    Exit 0 — the run's schedule completed and its final checkpoint is
    on disk.  Done runs are *never* re-executed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = ["MANIFEST_NAME", "RUN_STATES", "CampaignManifest"]

MANIFEST_NAME = "campaign.json"

RUN_STATES = ("queued", "running", "failed", "done")


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


class CampaignManifest:
    """Owns ``campaign.json``: per-run state, saved on every transition."""

    def __init__(self, campaign_dir: str | Path, data: dict) -> None:
        self.campaign_dir = Path(campaign_dir)
        self.path = self.campaign_dir / MANIFEST_NAME
        self.data = data
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, campaign_dir: str | Path, spec: dict,
               points) -> "CampaignManifest":
        """Fresh manifest: every point queued.  Saves immediately."""
        runs = {
            p.run_id: {
                "state": "queued",
                "exit_code": None,
                "run_dir": f"runs/{p.run_id}",
                "overrides": p.overrides,
                "attempts": 0,
                "updated": time.time(),
            }
            for p in points
        }
        manifest = cls(campaign_dir, {
            "format": 1,
            "name": spec.get("name", "campaign"),
            "spec": spec,
            "runs": runs,
            "updated": time.time(),
        })
        manifest.save()
        return manifest

    @classmethod
    def load(cls, campaign_dir: str | Path) -> "CampaignManifest":
        """Re-enter an existing campaign directory from its manifest."""
        campaign_dir = Path(campaign_dir)
        path = campaign_dir / MANIFEST_NAME
        if not path.exists():
            raise FileNotFoundError(
                f"{campaign_dir} has no {MANIFEST_NAME} manifest"
            )
        return cls(campaign_dir, json.loads(path.read_text()))

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def runs(self) -> dict:
        """The per-run state table (id -> entry), in point order."""
        return self.data["runs"]

    def run_dir(self, run_id: str) -> Path:
        """Absolute run directory of one point."""
        return self.campaign_dir / self.runs[run_id]["run_dir"]

    def mark(self, run_id: str, state: str,
             exit_code: int | None = None, owner: str | None = None,
             outcome: dict | None = None) -> None:
        """One state transition, persisted atomically before returning.

        ``owner`` stamps who is executing (the supervising scheduler's
        identity, recorded on ``running``); ``outcome`` is the
        supervisor's classified result, appended to the entry's
        ``history`` so ``campaign.json`` carries the full attempt
        record (class + reason per attempt) a post-mortem needs.
        """
        if state not in RUN_STATES:
            raise ValueError(f"unknown run state {state!r}; not in {RUN_STATES}")
        with self._lock:
            entry = self.runs[run_id]
            entry["state"] = state
            entry["exit_code"] = exit_code
            if state == "running":
                entry["attempts"] += 1
                entry["owner"] = owner
                entry["pid"] = os.getpid()
            if outcome is not None:
                entry.setdefault("history", []).append(
                    {"attempt": entry["attempts"], "state": state,
                     "time": time.time(), **outcome}
                )
            entry["updated"] = time.time()
            self.save()

    def record_dispatch(self, concurrency: int, executor: str) -> None:
        """Persist one scheduler invocation's effective dispatch plan.

        Every ``Campaign.run`` appends here, so the manifest records
        which backend and how many lanes actually executed the points —
        the provenance a reproducer needs when an aggregate looks off.
        """
        with self._lock:
            self.data.setdefault("dispatch", []).append({
                "time": time.time(),
                "executor": executor,
                "concurrency": int(concurrency),
                "pid": os.getpid(),
            })
            self.save()

    def reset_stale_running(self) -> list[str]:
        """Re-queue ``running`` entries whose recorded process is gone.

        A manifest can show ``running`` for two reasons: a live
        scheduler owns the point right now, or a previous scheduler
        died between transitions.  The recorded ``pid`` distinguishes
        them — when that process no longer exists the state is a lie
        and resume must treat the point as interrupted.  Returns the
        run ids that were reset.
        """
        reset = []
        with self._lock:
            for run_id, entry in self.runs.items():
                if entry["state"] != "running":
                    continue
                pid = entry.get("pid")
                if pid is not None and _pid_alive(int(pid)):
                    continue
                entry["state"] = "queued"
                entry["exit_code"] = None
                entry["owner"] = None
                entry["updated"] = time.time()
                reset.append(run_id)
            if reset:
                self.save()
        return reset

    def pending(self) -> list[str]:
        """Run ids still owed work (everything not ``done``), in order."""
        return [rid for rid, e in self.runs.items() if e["state"] != "done"]

    def counts(self) -> dict[str, int]:
        """How many runs sit in each state (zero-count states included)."""
        out = {state: 0 for state in RUN_STATES}
        for entry in self.runs.values():
            out[entry["state"]] += 1
        return out

    @property
    def status(self) -> str:
        """Campaign-level rollup: complete | failed | partial | queued."""
        counts = self.counts()
        total = sum(counts.values())
        if counts["done"] == total:
            return "complete"
        if counts["failed"]:
            return "failed"
        if counts["done"] or counts["running"]:
            return "partial"
        return "queued"

    def save(self) -> None:
        """Atomically rewrite ``campaign.json`` (tmp + rename)."""
        self.data["updated"] = time.time()
        tmp = self.path.with_name(f".{self.path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.data, indent=2) + "\n")
        os.replace(tmp, self.path)
