"""Declarative sweep specs: one :class:`CampaignConfig`, many runs.

The paper's headline numbers come from a *suite* of runs — Table 2 is a
grid of resolutions, and the neutrino-mass constraints of Yoshikawa+
2020 come from sweeping mass hierarchies against a fixed pipeline.  A
campaign spec captures such a suite declaratively: a **base**
:class:`~repro.runtime.config.RunConfig` (plain-dict form) plus a
**sweep** table mapping dotted config paths to value lists, expanded as
a cartesian product::

    name = "mass-res"
    [base]
    scenario = "hybrid"
    ...
    [sweep]
    params.m_nu = [0.1, 0.2, 0.4]
    grid.nx = [[16, 16, 16], [32, 32, 32]]

yields six fully-validated run configs.  Every point is materialized
through :meth:`RunConfig.from_dict`, so a typoed sweep path fails at
spec load with the same unknown-key rejection a typoed config file
gets — never minutes into the campaign.

Specs round-trip through JSON and TOML exactly like run configs
(``tomllib`` reads; the emitter in :mod:`repro.runtime.config` writes).
In TOML the sweep keys are natural dotted keys (parsed by the reader as
nested tables); in JSON they are literal ``"params.m_nu"`` strings —
:func:`_flatten_sweep` canonicalizes both to the dotted form.

Point identity is positional and stable: ``p0000``, ``p0001``, ... in
the deterministic order of the cartesian product (sweep keys in spec
order, values in list order).  The same spec always yields the same ids
mapped to the same overrides, which is what makes a campaign resumable
from its manifest alone.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..runtime.config import RunConfig, apply_override, toml_dumps

__all__ = [
    "EXECUTOR_NAMES",
    "CampaignConfig",
    "LimitsConfig",
    "RetryConfig",
    "SweepPoint",
]

#: Executor implementations the scheduler can build (see
#: campaign.executors and campaign.remote): ``processes`` (one OS
#: subprocess per run), ``threads`` (in-process runners) and ``queue``
#: (spool-file jobs drained by separate ``repro campaign worker``
#: processes, possibly on other hosts sharing the filesystem).
EXECUTOR_NAMES = ("processes", "threads", "queue")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class SweepPoint:
    """One materialized grid point: id, the overrides, the run config."""

    run_id: str
    overrides: dict
    config: RunConfig


@dataclass
class LimitsConfig:
    """Per-run resource budgets enforced by the campaign supervisor.

    ``wall_seconds`` and ``rss_mb`` are per-attempt ceilings (``None``,
    the default, disables each — TOML has no null, so a missing key and
    the default agree).  An over-budget run is drained gracefully first
    (a ``DRAIN`` flag in its run directory plus SIGTERM when the
    executor holds a process handle → the runner checkpoints and exits
    75) and SIGKILLed after ``grace_seconds`` if the drain does not
    land.  ``lease_seconds`` is the heartbeat horizon: a run whose
    lease/telemetry shows no progress for this long is declared stalled
    and reclaimed.  ``poll_seconds`` paces the supervisor's monitor
    loop (and the queue executor's result polling).

    RSS is read from the run's own telemetry (``rss_mb`` is peak RSS of
    the *run process*), so the budget is meaningful for the process and
    queue executors; thread-executor runs share the scheduler's RSS and
    only the drain-flag path applies to them.
    """

    wall_seconds: float | None = None
    rss_mb: float | None = None
    lease_seconds: float = 30.0
    grace_seconds: float = 5.0
    poll_seconds: float = 0.25


@dataclass
class RetryConfig:
    """Failure-classified retry budgets and backoff.

    ``max_attempts`` bounds the attempts one point may take per
    scheduler invocation (1 = dispatch once, never retry in-pass; a
    fresh ``repro campaign resume`` always gets a fresh budget).
    ``campaign_budget`` additionally caps the *total* retries across
    the whole invocation (``None`` = unbounded).  Only ``transient``
    outcomes (signal death, lease expiry, spawn failure) are retried by
    default; ``resumable`` drains (exit 75 — an orderly max-steps/
    budget drain that the next resume pass owns) are retried in-pass
    only with ``retry_resumable = true``.  ``permanent`` outcomes
    (guard aborts, exit 70) are never retried.  Backoff between
    attempts is capped exponential — ``min(cap, base * 2**(n-1))`` —
    with deterministic seeded jitter so two schedulers sharing a
    filesystem do not retry in lockstep.
    """

    max_attempts: int = 3
    campaign_budget: int | None = None
    retry_resumable: bool = False
    backoff_base: float = 0.2
    backoff_cap: float = 5.0
    jitter: float = 0.1
    seed: int = 0


@dataclass
class CampaignConfig:
    """One parameter-sweep campaign, declaratively.

    ``base`` is a full run config in plain-dict form; ``sweep`` maps
    dotted :class:`RunConfig` paths to the value lists to grid over.
    ``concurrency`` is K, the number of runs in flight at once, further
    clamped by the shared CPU budget: at most
    ``cpu_budget // cpus_per_run`` runs execute concurrently
    (``cpu_budget`` defaults to the cores this process may schedule on).
    ``executor`` picks the execution backend (``"processes"``: one OS
    subprocess per run, full isolation, the default; ``"threads"``:
    in-process runners — cheap, and safe because the telemetry event
    sink is contextual).  ``max_steps`` caps the steps each run takes
    per scheduler pass (runs drain resumable at the cap, the batch-
    scheduler pattern lifted to the whole campaign).
    """

    name: str = "campaign"
    base: dict = field(default_factory=dict)
    sweep: dict = field(default_factory=dict)
    concurrency: int = 2
    executor: str = "processes"
    cpus_per_run: int = 1
    cpu_budget: int | None = None
    max_steps: int | None = None
    limits: LimitsConfig = field(default_factory=LimitsConfig)
    retry: RetryConfig = field(default_factory=RetryConfig)

    # ------------------------------------------------------------------
    # validation and expansion
    # ------------------------------------------------------------------

    def validate(self) -> "CampaignConfig":
        """Raise ``ValueError`` on anything the scheduler cannot execute.

        Expands every sweep point — each one is validated by
        :meth:`RunConfig.from_dict`, so the whole grid is known
        executable before anything is materialized on disk.
        """
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor {self.executor!r} not in {EXECUTOR_NAMES}"
            )
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.cpus_per_run < 1:
            raise ValueError("cpus_per_run must be >= 1")
        if self.cpu_budget is not None and self.cpu_budget < 1:
            raise ValueError("cpu_budget must be >= 1 or null")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1 or null")
        lim = self.limits
        if lim.wall_seconds is not None and lim.wall_seconds <= 0.0:
            raise ValueError("limits.wall_seconds must be positive or null")
        if lim.rss_mb is not None and lim.rss_mb <= 0.0:
            raise ValueError("limits.rss_mb must be positive or null")
        if lim.lease_seconds <= 0.0:
            raise ValueError("limits.lease_seconds must be positive")
        if lim.grace_seconds <= 0.0:
            raise ValueError("limits.grace_seconds must be positive")
        if lim.poll_seconds <= 0.0:
            raise ValueError("limits.poll_seconds must be positive")
        r = self.retry
        if r.max_attempts < 1:
            raise ValueError("retry.max_attempts must be >= 1")
        if r.campaign_budget is not None and r.campaign_budget < 0:
            raise ValueError("retry.campaign_budget must be >= 0 or null")
        if r.backoff_base < 0.0 or r.backoff_cap < 0.0:
            raise ValueError("retry backoff values must be >= 0")
        if r.jitter < 0.0:
            raise ValueError("retry.jitter must be >= 0")
        for key, values in self.sweep.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"sweep.{key} must be a non-empty list of values"
                )
        self.points()  # builds + validates every RunConfig in the grid
        return self

    def points(self) -> list[SweepPoint]:
        """Expand the cartesian grid to validated, stably-named points."""
        keys = list(self.sweep)
        grids = [list(self.sweep[k]) for k in keys]
        points: list[SweepPoint] = []
        for index, combo in enumerate(itertools.product(*grids)):
            run_id = f"p{index:04d}"
            overrides = dict(zip(keys, combo))
            data = copy.deepcopy(self.base)
            for key, value in overrides.items():
                apply_override(data, key, copy.deepcopy(value))
            data["name"] = f"{self.name}-{run_id}"
            try:
                config = RunConfig.from_dict(data)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"campaign point {run_id} ({overrides!r}) does not "
                    f"build a valid RunConfig: {exc}"
                ) from exc
            points.append(SweepPoint(run_id, overrides, config))
        return points

    def effective_concurrency(self) -> int:
        """K clamped by the shared CPU budget (always >= 1)."""
        budget = self.cpu_budget if self.cpu_budget is not None \
            else _available_cores()
        return max(1, min(self.concurrency, budget // self.cpus_per_run))

    # ------------------------------------------------------------------
    # dict / file round-trips
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-dict form with canonical dotted sweep keys."""
        return {
            "name": self.name,
            "base": copy.deepcopy(self.base),
            "sweep": copy.deepcopy(self.sweep),
            "concurrency": self.concurrency,
            "executor": self.executor,
            "cpus_per_run": self.cpus_per_run,
            "cpu_budget": self.cpu_budget,
            "max_steps": self.max_steps,
            "limits": dataclasses.asdict(self.limits),
            "retry": dataclasses.asdict(self.retry),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        """Build and validate a spec from its plain-dict form.

        Unknown keys are rejected, same discipline as ``RunConfig`` —
        a typoed knob must not silently fall back to a default.
        """
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        if "sweep" in data:
            data["sweep"] = _flatten_sweep(data["sweep"])
        for section, section_cls in (("limits", LimitsConfig),
                                     ("retry", RetryConfig)):
            if section in data and not dataclasses.is_dataclass(data[section]):
                table = dict(data[section])
                section_known = {f.name for f in fields(section_cls)}
                section_unknown = set(table) - section_known
                if section_unknown:
                    raise ValueError(
                        f"unknown {section} keys: {sorted(section_unknown)}"
                    )
                data[section] = section_cls(**table)
        return cls(**data).validate()

    @classmethod
    def load(cls, path: str | Path) -> "CampaignConfig":
        """Load from a ``.json`` or ``.toml`` file (dispatch by suffix)."""
        path = Path(path)
        if path.suffix == ".toml":
            import tomllib

            data = tomllib.loads(path.read_text())
        elif path.suffix == ".json":
            data = json.loads(path.read_text())
        else:
            raise ValueError(f"spec must be .json or .toml, got {path.name!r}")
        return cls.from_dict(data)

    def dump(self, path: str | Path) -> Path:
        """Write to a ``.json`` or ``.toml`` file (dispatch by suffix)."""
        path = Path(path)
        data = self.as_dict()
        if path.suffix == ".toml":
            # dotted keys are not valid TOML bare keys; nest them so the
            # emitter writes `params.m_nu = [...]`-style dotted tables
            data["sweep"] = _nest_sweep(data["sweep"])
            path.write_text(toml_dumps(data))
        elif path.suffix == ".json":
            path.write_text(json.dumps(data, indent=2) + "\n")
        else:
            raise ValueError(f"spec must be .json or .toml, got {path.name!r}")
        return path


def _flatten_sweep(sweep: dict, prefix: str = "") -> dict:
    """Canonicalize a sweep table to dotted-string keys.

    TOML dotted keys parse as nested tables (``params.m_nu = [...]``
    arrives as ``{"params": {"m_nu": [...]}}``); JSON specs carry the
    dotted strings literally.  Both forms collapse to the same flat
    mapping, preserving spec order.
    """
    flat: dict = {}
    for key, value in sweep.items():
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten_sweep(value, dotted))
        else:
            flat[dotted] = list(value) if isinstance(value, tuple) else value
    return flat


def _nest_sweep(flat: dict) -> dict:
    """Inverse of :func:`_flatten_sweep` (for the TOML emitter)."""
    nested: dict = {}
    for dotted, values in flat.items():
        parts = dotted.split(".")
        cursor = nested
        for part in parts[:-1]:
            cursor = cursor.setdefault(part, {})
        cursor[parts[-1]] = values
    return nested
