"""Declarative sweep specs: one :class:`CampaignConfig`, many runs.

The paper's headline numbers come from a *suite* of runs — Table 2 is a
grid of resolutions, and the neutrino-mass constraints of Yoshikawa+
2020 come from sweeping mass hierarchies against a fixed pipeline.  A
campaign spec captures such a suite declaratively: a **base**
:class:`~repro.runtime.config.RunConfig` (plain-dict form) plus a
**sweep** table mapping dotted config paths to value lists, expanded as
a cartesian product::

    name = "mass-res"
    [base]
    scenario = "hybrid"
    ...
    [sweep]
    params.m_nu = [0.1, 0.2, 0.4]
    grid.nx = [[16, 16, 16], [32, 32, 32]]

yields six fully-validated run configs.  Every point is materialized
through :meth:`RunConfig.from_dict`, so a typoed sweep path fails at
spec load with the same unknown-key rejection a typoed config file
gets — never minutes into the campaign.

Specs round-trip through JSON and TOML exactly like run configs
(``tomllib`` reads; the emitter in :mod:`repro.runtime.config` writes).
In TOML the sweep keys are natural dotted keys (parsed by the reader as
nested tables); in JSON they are literal ``"params.m_nu"`` strings —
:func:`_flatten_sweep` canonicalizes both to the dotted form.

Point identity is positional and stable: ``p0000``, ``p0001``, ... in
the deterministic order of the cartesian product (sweep keys in spec
order, values in list order).  The same spec always yields the same ids
mapped to the same overrides, which is what makes a campaign resumable
from its manifest alone.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..runtime.config import RunConfig, apply_override, toml_dumps

__all__ = ["EXECUTOR_NAMES", "CampaignConfig", "SweepPoint"]

#: Executor implementations the scheduler can build (see
#: campaign.executors; the interface admits remote executors later).
EXECUTOR_NAMES = ("processes", "threads")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class SweepPoint:
    """One materialized grid point: id, the overrides, the run config."""

    run_id: str
    overrides: dict
    config: RunConfig


@dataclass
class CampaignConfig:
    """One parameter-sweep campaign, declaratively.

    ``base`` is a full run config in plain-dict form; ``sweep`` maps
    dotted :class:`RunConfig` paths to the value lists to grid over.
    ``concurrency`` is K, the number of runs in flight at once, further
    clamped by the shared CPU budget: at most
    ``cpu_budget // cpus_per_run`` runs execute concurrently
    (``cpu_budget`` defaults to the cores this process may schedule on).
    ``executor`` picks the execution backend (``"processes"``: one OS
    subprocess per run, full isolation, the default; ``"threads"``:
    in-process runners — cheap, and safe because the telemetry event
    sink is contextual).  ``max_steps`` caps the steps each run takes
    per scheduler pass (runs drain resumable at the cap, the batch-
    scheduler pattern lifted to the whole campaign).
    """

    name: str = "campaign"
    base: dict = field(default_factory=dict)
    sweep: dict = field(default_factory=dict)
    concurrency: int = 2
    executor: str = "processes"
    cpus_per_run: int = 1
    cpu_budget: int | None = None
    max_steps: int | None = None

    # ------------------------------------------------------------------
    # validation and expansion
    # ------------------------------------------------------------------

    def validate(self) -> "CampaignConfig":
        """Raise ``ValueError`` on anything the scheduler cannot execute.

        Expands every sweep point — each one is validated by
        :meth:`RunConfig.from_dict`, so the whole grid is known
        executable before anything is materialized on disk.
        """
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor {self.executor!r} not in {EXECUTOR_NAMES}"
            )
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.cpus_per_run < 1:
            raise ValueError("cpus_per_run must be >= 1")
        if self.cpu_budget is not None and self.cpu_budget < 1:
            raise ValueError("cpu_budget must be >= 1 or null")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1 or null")
        for key, values in self.sweep.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"sweep.{key} must be a non-empty list of values"
                )
        self.points()  # builds + validates every RunConfig in the grid
        return self

    def points(self) -> list[SweepPoint]:
        """Expand the cartesian grid to validated, stably-named points."""
        keys = list(self.sweep)
        grids = [list(self.sweep[k]) for k in keys]
        points: list[SweepPoint] = []
        for index, combo in enumerate(itertools.product(*grids)):
            run_id = f"p{index:04d}"
            overrides = dict(zip(keys, combo))
            data = copy.deepcopy(self.base)
            for key, value in overrides.items():
                apply_override(data, key, copy.deepcopy(value))
            data["name"] = f"{self.name}-{run_id}"
            try:
                config = RunConfig.from_dict(data)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"campaign point {run_id} ({overrides!r}) does not "
                    f"build a valid RunConfig: {exc}"
                ) from exc
            points.append(SweepPoint(run_id, overrides, config))
        return points

    def effective_concurrency(self) -> int:
        """K clamped by the shared CPU budget (always >= 1)."""
        budget = self.cpu_budget if self.cpu_budget is not None \
            else _available_cores()
        return max(1, min(self.concurrency, budget // self.cpus_per_run))

    # ------------------------------------------------------------------
    # dict / file round-trips
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-dict form with canonical dotted sweep keys."""
        return {
            "name": self.name,
            "base": copy.deepcopy(self.base),
            "sweep": copy.deepcopy(self.sweep),
            "concurrency": self.concurrency,
            "executor": self.executor,
            "cpus_per_run": self.cpus_per_run,
            "cpu_budget": self.cpu_budget,
            "max_steps": self.max_steps,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        """Build and validate a spec from its plain-dict form.

        Unknown keys are rejected, same discipline as ``RunConfig`` —
        a typoed knob must not silently fall back to a default.
        """
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        if "sweep" in data:
            data["sweep"] = _flatten_sweep(data["sweep"])
        return cls(**data).validate()

    @classmethod
    def load(cls, path: str | Path) -> "CampaignConfig":
        """Load from a ``.json`` or ``.toml`` file (dispatch by suffix)."""
        path = Path(path)
        if path.suffix == ".toml":
            import tomllib

            data = tomllib.loads(path.read_text())
        elif path.suffix == ".json":
            data = json.loads(path.read_text())
        else:
            raise ValueError(f"spec must be .json or .toml, got {path.name!r}")
        return cls.from_dict(data)

    def dump(self, path: str | Path) -> Path:
        """Write to a ``.json`` or ``.toml`` file (dispatch by suffix)."""
        path = Path(path)
        data = self.as_dict()
        if path.suffix == ".toml":
            # dotted keys are not valid TOML bare keys; nest them so the
            # emitter writes `params.m_nu = [...]`-style dotted tables
            data["sweep"] = _nest_sweep(data["sweep"])
            path.write_text(toml_dumps(data))
        elif path.suffix == ".json":
            path.write_text(json.dumps(data, indent=2) + "\n")
        else:
            raise ValueError(f"spec must be .json or .toml, got {path.name!r}")
        return path


def _flatten_sweep(sweep: dict, prefix: str = "") -> dict:
    """Canonicalize a sweep table to dotted-string keys.

    TOML dotted keys parse as nested tables (``params.m_nu = [...]``
    arrives as ``{"params": {"m_nu": [...]}}``); JSON specs carry the
    dotted strings literally.  Both forms collapse to the same flat
    mapping, preserving spec order.
    """
    flat: dict = {}
    for key, value in sweep.items():
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten_sweep(value, dotted))
        else:
            flat[dotted] = list(value) if isinstance(value, tuple) else value
    return flat


def _nest_sweep(flat: dict) -> dict:
    """Inverse of :func:`_flatten_sweep` (for the TOML emitter)."""
    nested: dict = {}
    for dotted, values in flat.items():
        parts = dotted.split(".")
        cursor = nested
        for part in parts[:-1]:
            cursor = cursor.setdefault(part, {})
        cursor[parts[-1]] = values
    return nested
