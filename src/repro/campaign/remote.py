"""Spool-backed remote execution: job tickets, workers, result files.

This is the campaign's batch-queue analog.  On Fugaku the paper's runs
went through a batch scheduler: the submitting process never held the
job's process handle — it wrote a submission, and the system reported
terminal status back.  :class:`QueueExecutor` reproduces that seam on a
shared filesystem:

* **submit** — the scheduler writes an atomic *job ticket* into
  ``<campaign_dir>/spool/jobs/``;
* **claim** — a separate ``repro campaign worker`` process (possibly on
  another host sharing the filesystem) takes the run's
  :class:`~repro.campaign.supervision.RunLease`, deletes the ticket,
  and executes the run in-process while a heartbeat thread renews the
  lease;
* **report** — the worker writes an atomic *result file* into
  ``<campaign_dir>/spool/results/`` carrying the 0/75/70 exit code;
* **poll** — the scheduler's :meth:`QueueExecutor.execute` polls for
  the result instead of holding a subprocess handle.

Failure detection falls out of the lease protocol rather than process
plumbing: a worker that is SIGKILLed mid-run simply stops renewing the
lease, the executor's poll sees the expired lease, reclaims it, and
raises :class:`~repro.campaign.supervision.LeaseExpired` — which the
supervisor classifies as ``transient`` and re-dispatches.  A ticket
that nobody claims while no worker heartbeat is fresh raises
:class:`~repro.campaign.supervision.ExecutorUnavailable`, feeding the
scheduler's executor-degradation chain (queue → processes → threads).

Wall-clock budgets are enforced co-operatively for queue runs: the
executor touches the run directory's ``DRAIN`` flag when the budget is
exceeded and the worker's runner drains to exit 75 at its next step —
there is deliberately no remote hard-kill, because the only authority a
shared filesystem gives us over a foreign host is the lease.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path

from ..runtime.runner import DRAIN_NAME
from .executors import Executor
from .supervision import ExecutorUnavailable, LeaseExpired, RunLease

__all__ = [
    "QueueExecutor",
    "run_worker",
    "spool_dirs",
]

#: A worker heartbeat file older than this is a dead worker.
WORKER_TTL = 15.0

#: Grace before an unclaimed ticket with no live worker is withdrawn.
UNCLAIMED_GRACE = 10.0


def spool_dirs(campaign_dir: str | Path) -> tuple[Path, Path, Path]:
    """Create (if needed) and return the (jobs, results, workers) dirs."""
    spool = Path(campaign_dir) / "spool"
    jobs, results, workers = spool / "jobs", spool / "results", spool / "workers"
    for d in (jobs, results, workers):
        d.mkdir(parents=True, exist_ok=True)
    return jobs, results, workers


def _write_atomic(path: Path, data: dict) -> None:
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=2) + "\n")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict | None:
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def _live_workers(workers_dir: Path, ttl: float = WORKER_TTL) -> list[str]:
    """Worker ids whose heartbeat file is fresher than ``ttl`` seconds."""
    now = time.time()
    alive = []
    for hb in workers_dir.glob("*.json"):
        try:
            if now - hb.stat().st_mtime <= ttl:
                alive.append(hb.stem)
        except OSError:
            pass
    return alive


class QueueExecutor(Executor):
    """Submit runs to the campaign spool; poll results from workers.

    Requires ``campaign_dir`` (the spool lives under it).  ``limits``
    supplies the lease duration workers renew against and the optional
    wall budget enforced via the ``DRAIN`` flag.
    """

    name = "queue"
    remote = True

    #: Poll cadence while waiting on a result.
    POLL_SECONDS = 0.2

    def __init__(self, campaign_dir: Path | None = None,
                 limits=None) -> None:
        super().__init__(campaign_dir, limits)
        if self.campaign_dir is None:
            raise ValueError("QueueExecutor requires campaign_dir")

    def _lease_seconds(self) -> float:
        return float(getattr(self.limits, "lease_seconds", None) or 30.0)

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        jobs, results, workers = spool_dirs(self.campaign_dir)
        run_id = run_dir.name
        ticket_path = jobs / f"{run_id}.json"
        result_path = results / f"{run_id}.json"
        nonce = uuid.uuid4().hex
        result_path.unlink(missing_ok=True)  # stale result from a prior attempt
        _write_atomic(ticket_path, {
            "run_id": run_id,
            "nonce": nonce,
            "run_dir": str(run_dir.resolve()),
            "config_path": str(Path(config_path).resolve()),
            "max_steps": max_steps,
            "lease_seconds": self._lease_seconds(),
            "submitted": time.time(),
        })

        submitted = time.time()
        wall = getattr(self.limits, "wall_seconds", None)
        drained = False
        while True:
            result = _read_json(result_path)
            if result is not None and result.get("nonce") == nonce:
                result_path.unlink(missing_ok=True)
                code = result.get("exit_code")
                # a worker interrupted mid-write reports no code: treat
                # as a transient crash (1 is not a contract code)
                return int(code) if code is not None else 1

            lease = RunLease.load(run_dir)
            claimed = not ticket_path.exists()
            if lease is not None and lease.expired():
                # the claiming worker died: reclaim and report upward
                RunLease.break_lease(run_dir)
                ticket_path.unlink(missing_ok=True)
                raise LeaseExpired(
                    f"{run_id}: worker {lease.owner!r} stopped renewing"
                )
            if not claimed and lease is None:
                waited = time.time() - submitted
                if (waited > UNCLAIMED_GRACE
                        and not _live_workers(workers)):
                    ticket_path.unlink(missing_ok=True)
                    raise ExecutorUnavailable(
                        f"{run_id}: no live worker after {waited:.1f}s"
                    )
            if (wall is not None and not drained
                    and time.time() - submitted > wall):
                # co-operative budget enforcement: the worker's runner
                # checks this flag every step and drains to exit 75
                (run_dir / DRAIN_NAME).touch()
                drained = True
            time.sleep(self.POLL_SECONDS)

    def request_kill(self, run_dir: Path) -> bool:
        return False  # no remote hard-kill; the lease is the authority


def run_worker(campaign_dir: str | Path, poll: float = 0.5,
               once: bool = False, worker_id: str | None = None,
               max_jobs: int | None = None) -> int:
    """Claim and execute spool jobs until drained (or forever).

    One worker process services one campaign spool.  Runs execute
    *in-process* (the worker is the run — killing the worker kills the
    run, which is exactly what makes lease reclaim observable), so
    parallelism comes from starting several workers.

    Returns the number of jobs executed.  ``once`` drains the currently
    visible queue and returns instead of polling forever; ``max_jobs``
    stops after that many executions.
    """
    from ..runtime import RunConfig, SimulationRunner

    campaign_dir = Path(campaign_dir)
    jobs, results, workers = spool_dirs(campaign_dir)
    worker_id = worker_id or f"worker-{os.getpid()}"
    heartbeat_path = workers / f"{worker_id}.json"
    executed = 0

    def beat() -> None:
        _write_atomic(heartbeat_path, {
            "worker": worker_id, "pid": os.getpid(), "time": time.time(),
        })

    try:
        while True:
            beat()
            claimed_any = False
            for ticket_path in sorted(jobs.glob("*.json")):
                ticket = _read_json(ticket_path)
                if ticket is None:
                    continue
                run_dir = Path(ticket["run_dir"])
                duration = float(ticket.get("lease_seconds", 30.0))
                lease = RunLease.acquire(run_dir, worker_id, duration)
                if lease is None:
                    continue  # someone live holds it
                ticket_path.unlink(missing_ok=True)  # claim complete
                claimed_any = True
                executed += 1
                _execute_claimed(ticket, lease, duration, beat,
                                 results, worker_id,
                                 RunConfig, SimulationRunner)
                if max_jobs is not None and executed >= max_jobs:
                    return executed
            if once and not claimed_any:
                return executed
            if not claimed_any:
                time.sleep(poll)
    finally:
        heartbeat_path.unlink(missing_ok=True)


def _execute_claimed(ticket: dict, lease: RunLease, duration: float,
                     beat, results: Path, worker_id: str,
                     RunConfig, SimulationRunner) -> None:
    """Run one claimed job under a renewing lease; report the result."""
    run_dir = Path(ticket["run_dir"])
    stop = threading.Event()

    def renew_loop() -> None:
        while not stop.wait(timeout=max(0.1, duration / 3.0)):
            beat()
            if not lease.renew(duration):
                return  # reclaimed from under us; the run is forfeit

    renewer = threading.Thread(target=renew_loop, daemon=True,
                               name=f"lease-{ticket['run_id']}")
    renewer.start()
    code: int | None = None
    error = ""
    try:
        config = RunConfig.load(ticket["config_path"])
        runner = SimulationRunner.create(config, run_dir)
        code = runner.run(max_steps=ticket.get("max_steps"))
    except Exception as exc:
        # a crashed run must not take the worker down; exit 1 is not a
        # contract code, so the supervisor classifies it transient
        code = 1
        error = f"{type(exc).__name__}: {exc}"
        with open(run_dir / "executor.log", "a", encoding="utf-8") as log:
            log.write(f"[{worker_id}] run raised {error}\n")
    finally:
        stop.set()
        renewer.join(timeout=2.0)
        _write_atomic(results / f"{ticket['run_id']}.json", {
            "run_id": ticket["run_id"],
            "nonce": ticket.get("nonce"),
            "exit_code": code,
            "error": error,
            "worker": worker_id,
            "finished": time.time(),
        })
        lease.release()
