"""Pluggable run executors: how one campaign point actually executes.

The scheduler only ever talks to the :class:`Executor` interface —
*execute this materialized run directory, tell me the exit code* — so
the execution substrate is swappable without touching scheduling,
manifest, or resume logic.  Three implementations ship:

:class:`ProcessExecutor` (``"processes"``, the default)
    One OS subprocess per run, driving the standard ``python -m repro
    run`` entry point.  Full isolation (a run that segfaults or is
    OOM-killed cannot take the campaign down — its death becomes a
    recorded exit code), true multi-core parallelism, and exactly the
    code path a human operator runs by hand.  In-flight children are
    tracked: ``close()`` (and a KeyboardInterrupt mid-``execute``)
    terminates and reaps them instead of orphaning processes that keep
    writing into run directories.

:class:`ThreadExecutor` (``"threads"``)
    A :class:`~repro.runtime.runner.SimulationRunner` in the calling
    thread.  No subprocess startup tax, which makes it the executor for
    tests and for the scheduling-overhead benchmark.  Safe for
    concurrent runs *because the telemetry event sink is contextual*
    (a contextvar, not a process global): each in-flight runner's
    subsystem events land in its own ``telemetry.jsonl``.

:class:`~repro.campaign.remote.QueueExecutor` (``"queue"``)
    The remote seam: submission writes a job ticket into the
    campaign's spool directory and separate ``repro campaign worker``
    processes (possibly on other hosts sharing the filesystem) claim
    jobs through the lease protocol, execute them, and report terminal
    status back through result files — the scheduler polls rather than
    holding a subprocess handle.  See :mod:`repro.campaign.remote`.

The supervision hooks (:meth:`Executor.request_drain` /
:meth:`Executor.request_kill`) are how the campaign watchdog enforces
wall-clock/RSS budgets and reclaims stalled runs: drain is always
available (the supervisor also writes the run directory's ``DRAIN``
flag, which every runner honors), hard kill only where the executor
actually holds a process handle.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

__all__ = [
    "Executor",
    "ProcessExecutor",
    "ThreadExecutor",
    "build_executor",
]


class Executor:
    """Executes one materialized campaign run to its next stopping point.

    Implementations must be safe to call from multiple threads at once
    (the scheduler dispatches K concurrent ``execute`` calls) and must
    be *re-entrant per run directory*: executing a directory that
    already holds checkpoints resumes it — that contract is what makes
    campaign resume (and supervised retry) free, and all shipped
    executors inherit it from ``SimulationRunner``'s own auto-resume.

    Constructors accept (and may ignore) the keyword context the
    scheduler provides — ``campaign_dir`` and ``limits`` — so one
    registry builds every backend.
    """

    name = "abstract"
    #: Remote executors poll an external substrate; the supervisor's
    #: local monitor loop (heartbeat renew, drain→kill ladder) is
    #: theirs to implement inside ``execute``.
    remote = False

    def __init__(self, campaign_dir: Path | None = None,
                 limits=None) -> None:
        self.campaign_dir = Path(campaign_dir) if campaign_dir else None
        self.limits = limits

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        """Run to completion (or drain); return the 0/75/70 exit code."""
        raise NotImplementedError

    def request_drain(self, run_dir: Path) -> None:
        """Ask the run to drain gracefully (beyond the ``DRAIN`` flag)."""

    def request_kill(self, run_dir: Path) -> bool:
        """Hard-kill the run if a handle exists; ``True`` when delivered."""
        return False

    def close(self) -> None:
        """Release executor-held resources (pools, children); idempotent."""


class ThreadExecutor(Executor):
    """In-process execution on the calling (scheduler worker) thread."""

    name = "threads"

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        from ..runtime import RunConfig, SimulationRunner

        config = RunConfig.load(config_path)
        runner = SimulationRunner.create(config, run_dir)
        return runner.run(max_steps=max_steps)


class ProcessExecutor(Executor):
    """One subprocess per run through the ``repro run`` CLI.

    The child inherits this interpreter and environment, with the
    package root prepended to ``PYTHONPATH`` so a source-tree layout
    works without installation.  stdout/stderr are captured to
    ``executor.log`` inside the run directory — the campaign's analog
    of a batch scheduler's per-job log file.

    Every in-flight child is registered under its run directory:
    :meth:`request_drain`/:meth:`request_kill` deliver SIGTERM/SIGKILL
    for the supervisor, and :meth:`close` terminates and reaps whatever
    is still running — a scheduler that is interrupted must not leave
    orphans appending to run directories (and corrupting a subsequent
    resume's lease assumptions).
    """

    name = "processes"

    #: Seconds ``close()`` waits after SIGTERM before escalating.
    TERM_GRACE = 5.0

    def __init__(self, campaign_dir: Path | None = None,
                 limits=None) -> None:
        super().__init__(campaign_dir, limits)
        self._procs: dict[str, subprocess.Popen] = {}
        self._lock = threading.Lock()

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        cmd = [sys.executable, "-m", "repro", "run", str(config_path),
               "--run-dir", str(run_dir)]
        if max_steps is not None:
            cmd += ["--max-steps", str(max_steps)]
        run_dir.mkdir(parents=True, exist_ok=True)
        key = str(Path(run_dir).resolve())
        with open(run_dir / "executor.log", "a", encoding="utf-8") as log:
            proc = subprocess.Popen(cmd, env=env, stdout=log,
                                    stderr=subprocess.STDOUT)
            with self._lock:
                self._procs[key] = proc
            try:
                return proc.wait()
            except KeyboardInterrupt:
                # interactive abort: this child must not outlive us
                self._reap(proc)
                raise
            finally:
                with self._lock:
                    self._procs.pop(key, None)

    # -- supervision hooks ----------------------------------------------

    def _proc_for(self, run_dir: Path) -> subprocess.Popen | None:
        with self._lock:
            return self._procs.get(str(Path(run_dir).resolve()))

    def request_drain(self, run_dir: Path) -> None:
        proc = self._proc_for(run_dir)
        if proc is not None and proc.poll() is None:
            proc.terminate()

    def request_kill(self, run_dir: Path) -> bool:
        proc = self._proc_for(run_dir)
        if proc is not None and proc.poll() is None:
            proc.kill()
            return True
        return False

    # -- lifecycle ------------------------------------------------------

    @staticmethod
    def _reap(proc: subprocess.Popen,
              grace: float = TERM_GRACE) -> None:
        """SIGTERM (drain), wait out the grace, SIGKILL, always wait()."""
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                proc.kill()
        proc.wait()

    def close(self) -> None:
        """Terminate and reap every in-flight child; idempotent."""
        with self._lock:
            procs = list(self._procs.values())
            self._procs.clear()
        for proc in procs:
            self._reap(proc)


def _executor_registry() -> dict:
    from .remote import QueueExecutor

    return {
        ProcessExecutor.name: ProcessExecutor,
        ThreadExecutor.name: ThreadExecutor,
        QueueExecutor.name: QueueExecutor,
    }


def build_executor(name: str, campaign_dir: Path | None = None,
                   limits=None) -> Executor:
    """Instantiate a registered executor by name.

    Unknown names raise ``ValueError`` listing the valid choices.
    ``campaign_dir``/``limits`` are the scheduler's context — the queue
    executor needs both, the local executors keep them for reference.
    """
    registry = _executor_registry()
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; expected one of "
            f"{tuple(registry)}"
        ) from None
    return cls(campaign_dir=campaign_dir, limits=limits)
