"""Pluggable run executors: how one campaign point actually executes.

The scheduler only ever talks to the :class:`Executor` interface —
*execute this materialized run directory, tell me the exit code* — so
the execution substrate is swappable without touching scheduling,
manifest, or resume logic.  Two implementations ship:

:class:`ProcessExecutor` (``"processes"``, the default)
    One OS subprocess per run, driving the standard ``python -m repro
    run`` entry point.  Full isolation (a run that segfaults or is
    OOM-killed cannot take the campaign down — its death becomes a
    recorded exit code), true multi-core parallelism, and exactly the
    code path a human operator runs by hand.

:class:`ThreadExecutor` (``"threads"``)
    A :class:`~repro.runtime.runner.SimulationRunner` in the calling
    thread.  No subprocess startup tax, which makes it the executor for
    tests and for the scheduling-overhead benchmark.  Safe for
    concurrent runs *because the telemetry event sink is contextual*
    (a contextvar, not a process global): each in-flight runner's
    subsystem events land in its own ``telemetry.jsonl``.

The same interface admits remote executors later (submit a batch job /
HTTP request, poll, map the remote status to the 0/75/70 contract) —
the ``clusters.py`` submission-script pattern of the SimulationRunner
exemplar, behind one method.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

__all__ = [
    "Executor",
    "ProcessExecutor",
    "ThreadExecutor",
    "build_executor",
]


class Executor:
    """Executes one materialized campaign run to its next stopping point.

    Implementations must be safe to call from multiple threads at once
    (the scheduler dispatches K concurrent ``execute`` calls) and must
    be *re-entrant per run directory*: executing a directory that
    already holds checkpoints resumes it — that contract is what makes
    campaign resume free, and both shipped executors inherit it from
    ``SimulationRunner``'s own auto-resume.
    """

    name = "abstract"

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        """Run to completion (or drain); return the 0/75/70 exit code."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor-held resources (pools, sessions); idempotent."""


class ThreadExecutor(Executor):
    """In-process execution on the calling (scheduler worker) thread."""

    name = "threads"

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        from ..runtime import RunConfig, SimulationRunner

        config = RunConfig.load(config_path)
        runner = SimulationRunner.create(config, run_dir)
        return runner.run(max_steps=max_steps)


class ProcessExecutor(Executor):
    """One subprocess per run through the ``repro run`` CLI.

    The child inherits this interpreter and environment, with the
    package root prepended to ``PYTHONPATH`` so a source-tree layout
    works without installation.  stdout/stderr are captured to
    ``executor.log`` inside the run directory — the campaign's analog
    of a batch scheduler's per-job log file.
    """

    name = "processes"

    def execute(self, run_dir: Path, config_path: Path,
                max_steps: int | None = None) -> int:
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        cmd = [sys.executable, "-m", "repro", "run", str(config_path),
               "--run-dir", str(run_dir)]
        if max_steps is not None:
            cmd += ["--max-steps", str(max_steps)]
        run_dir.mkdir(parents=True, exist_ok=True)
        with open(run_dir / "executor.log", "a", encoding="utf-8") as log:
            proc = subprocess.run(cmd, env=env, stdout=log,
                                  stderr=subprocess.STDOUT)
        return proc.returncode


_EXECUTORS = {
    ProcessExecutor.name: ProcessExecutor,
    ThreadExecutor.name: ThreadExecutor,
}


def build_executor(name: str) -> Executor:
    """Instantiate a registered executor by name."""
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; expected one of "
            f"{tuple(_EXECUTORS)}"
        ) from None
    return cls()
