"""Cross-run aggregation: the campaign's results table.

Each run already reduces its own telemetry stream with
:func:`repro.runtime.telemetry.summarize` (steps, wall clock, worst
drifts, fault-tolerance activity); this module folds those per-run
summaries across the sweep into one table keyed by the swept
parameters — the campaign analog of the paper's Table 2 reporting, and
the artifact a mass-hierarchy sweep is actually run *for*.

The summarize pass streams each ``telemetry.jsonl`` and tolerates torn
tails, so aggregating a campaign whose scheduler was SIGKILLed mid-run
works on the first try.
"""

from __future__ import annotations

from ..runtime.telemetry import summarize
from .manifest import CampaignManifest

__all__ = ["aggregate_rows", "format_table"]


def aggregate_rows(manifest: CampaignManifest) -> list[dict]:
    """One row per campaign point, in point order.

    Rows carry the manifest state (state, exit code, attempts), the
    swept overrides, and — when the run has telemetry on disk — the
    summarized results: steps covered, final coordinate, total/median
    wall clock, the worst conservation drift, and the event count.
    """
    rows: list[dict] = []
    for run_id, entry in manifest.runs.items():
        history = entry.get("history", [])
        row = {
            "run_id": run_id,
            "state": entry["state"],
            "exit_code": entry["exit_code"],
            "attempts": entry["attempts"],
            "failure_class": history[-1].get("class") if history else None,
            "overrides": dict(entry["overrides"]),
            "steps": 0,
            "last_coord": None,
            "wall_s_total": 0.0,
            "wall_s_median": 0.0,
            "max_drift": 0.0,
            "events": 0,
        }
        telemetry = manifest.run_dir(run_id) / "telemetry.jsonl"
        if telemetry.exists():
            summary = summarize(telemetry)
            row["steps"] = summary["steps"]
            row["last_coord"] = summary.get("last_coord")
            row["wall_s_total"] = summary.get("wall_s_total", 0.0)
            row["wall_s_median"] = summary.get("wall_s_median", 0.0)
            drifts = summary.get("max_drifts", {})
            row["max_drift"] = max(drifts.values(), default=0.0)
            row["events"] = sum(summary.get("events", {}).values())
        rows.append(row)
    return rows


def _fmt_overrides(overrides: dict) -> str:
    return " ".join(f"{k}={v!r}" for k, v in overrides.items()) or "-"


def _fmt_coord(coord) -> str:
    if not coord:
        return "-"
    key, value = next(iter(coord.items()))
    return f"{key}={value:.4g}"


def format_table(rows: list[dict]) -> str:
    """Render aggregate rows as an aligned text table."""
    header = (f"{'run':>6} {'state':>8} {'exit':>4} {'try':>3} "
              f"{'class':>9} {'steps':>5} "
              f"{'wall[s]':>8} {'drift':>9} {'coord':>10}  sweep")
    lines = [header, "-" * len(header)]
    for row in rows:
        exit_code = "-" if row["exit_code"] is None else str(row["exit_code"])
        cls = row.get("failure_class") or "-"
        lines.append(
            f"{row['run_id']:>6} {row['state']:>8} {exit_code:>4} "
            f"{row['attempts']:>3} {cls:>9} "
            f"{row['steps']:>5} {row['wall_s_total']:>8.2f} "
            f"{row['max_drift']:>9.2e} {_fmt_coord(row['last_coord']):>10}  "
            f"{_fmt_overrides(row['overrides'])}"
        )
    done = sum(r["state"] == "done" for r in rows)
    lines.append(f"{done}/{len(rows)} runs done")
    return "\n".join(lines)
