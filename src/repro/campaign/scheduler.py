"""The campaign scheduler: K runs in flight, manifest always current.

A :class:`Campaign` owns one **campaign directory**::

    <campaign_dir>/
        campaign.json        # manifest: spec + per-run state
        runs/
            p0000/           # one SimulationRunner run directory each
                config.json  # the materialized RunConfig for this point
                run.json     # (written by the runner)
                telemetry.jsonl
                checkpoints/
            p0001/
            ...

Scheduling is an asyncio fan-out: every pending point becomes a task,
a semaphore admits ``effective_concurrency()`` of them at once (K
clamped by the shared CPU budget), and each task hands its run to the
executor on a worker thread.  All manifest mutations happen on the
event-loop thread, one atomic rewrite per transition — kill the
scheduler at any instant and ``campaign.json`` is complete and at worst
one transition stale.

Resume is a property of the layers below, composed: the manifest says
which points are not ``done`` (those are re-dispatched; done runs are
never touched), and each re-dispatched run re-enters its own directory
through ``SimulationRunner``'s auto-resume — newest valid checkpoint,
quarantine scan, rollback budget and all.  ``repro campaign resume``
is therefore idempotent: run it until the exit code is 0.

Campaign exit codes extend the single-run contract upward: 0 when every
point is done; 70 when any point failed with a guard abort (someone
must look); else 75 (everything outstanding is resumable — requeue).
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

from ..runtime.runner import EXIT_COMPLETE, EXIT_GUARD_ABORT, EXIT_RESUMABLE
from ..runtime.telemetry import TelemetryWriter
from .aggregate import aggregate_rows
from .config import CampaignConfig
from .executors import Executor, build_executor
from .manifest import CampaignManifest
from .supervision import Supervisor

__all__ = ["RUNS_DIR", "RUN_CONFIG_NAME", "SUPERVISOR_LOG", "Campaign"]

RUNS_DIR = "runs"
RUN_CONFIG_NAME = "config.json"

#: Campaign-level supervision event stream (``lease_*`` /
#: ``supervision_*`` records), next to ``campaign.json``.
SUPERVISOR_LOG = "supervisor.jsonl"

#: Executor degradation order: when a backend keeps failing to spawn,
#: the scheduler falls back to the next entry that still works.
DEGRADE_CHAIN = ("queue", "processes", "threads")


class Campaign:
    """Drives one campaign spec inside one campaign directory.

    Use :meth:`create` to materialize (or re-enter) a campaign
    directory from a spec, :meth:`resume` to re-enter one from its
    manifest alone, then :meth:`run` — which may be invoked repeatedly;
    every invocation dispatches only the points still owed work.
    """

    def __init__(self, config: CampaignConfig, campaign_dir: str | Path,
                 manifest: CampaignManifest) -> None:
        self.config = config
        self.campaign_dir = Path(campaign_dir)
        self.manifest = manifest

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, config: CampaignConfig,
               campaign_dir: str | Path) -> "Campaign":
        """Materialize a campaign directory (idempotent re-entry).

        Every point gets its run directory and a ``config.json`` the
        executors (and a human with ``repro run``) can drive directly.
        An existing manifest is preserved — creating over a partially
        executed campaign re-enters it rather than resetting state.
        """
        config.validate()
        campaign_dir = Path(campaign_dir)
        points = config.points()
        (campaign_dir / RUNS_DIR).mkdir(parents=True, exist_ok=True)
        for point in points:
            run_dir = campaign_dir / RUNS_DIR / point.run_id
            run_dir.mkdir(exist_ok=True)
            config_path = run_dir / RUN_CONFIG_NAME
            if not config_path.exists():
                point.config.dump(config_path)
        if (campaign_dir / "campaign.json").exists():
            manifest = CampaignManifest.load(campaign_dir)
        else:
            manifest = CampaignManifest.create(
                campaign_dir, config.as_dict(), points
            )
        return cls(config, campaign_dir, manifest)

    @classmethod
    def resume(cls, campaign_dir: str | Path) -> "Campaign":
        """Re-enter an existing campaign directory from its manifest."""
        manifest = CampaignManifest.load(campaign_dir)
        config = CampaignConfig.from_dict(manifest.data["spec"])
        return cls(config, campaign_dir, manifest)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def run(self, executor: Executor | None = None,
            max_steps: int | None = None, supervise: bool = True) -> int:
        """Dispatch every non-done point; return the campaign exit code.

        ``executor`` overrides the spec's choice (tests inject chaos
        through exactly this seam); ``max_steps`` caps the steps each
        run takes this invocation (defaults to the spec's, usually
        unset).  ``supervise`` (the default) runs every point through
        the :class:`~repro.campaign.supervision.Supervisor` — lease,
        watchdog budgets, failure-classified retries with backoff, and
        the ``supervisor.jsonl`` event stream; ``supervise=False`` is
        the bare direct-dispatch path (the scheduling-overhead
        benchmark's baseline).
        """
        return asyncio.run(self._run_async(executor, max_steps, supervise))

    def _build_executor(self, name: str) -> Executor:
        return build_executor(name, campaign_dir=self.campaign_dir,
                              limits=self.config.limits)

    async def _run_async(self, executor: Executor | None,
                         max_steps: int | None, supervise: bool) -> int:
        owns_executor = executor is None
        if executor is None:
            executor = self._build_executor(self.config.executor)
        if max_steps is None:
            max_steps = self.config.max_steps
        stale = self.manifest.reset_stale_running()
        if stale:
            print(f"campaign: re-queued {len(stale)} orphaned running "
                  f"run(s): {', '.join(stale)}", file=sys.stderr)
        pending = self.manifest.pending()
        k = self.config.effective_concurrency()
        self.manifest.record_dispatch(k, executor.name)
        print(f"campaign: {self.config.name} — {len(pending)} of "
              f"{len(self.manifest.runs)} runs pending, {k} in flight "
              f"({executor.name} executor)", file=sys.stderr)
        semaphore = asyncio.Semaphore(k)
        if not supervise:
            return await self._direct(executor, owns_executor, max_steps,
                                      pending, semaphore)

        writer = TelemetryWriter(self.campaign_dir / SUPERVISOR_LOG)
        supervisor = Supervisor(self.campaign_dir, self.config.limits,
                                self.config.retry, sink=writer.event)
        # mutated only on the event-loop thread; ``closers`` also keeps
        # degraded-away executors alive until the finally reaps them
        state = {"executor": executor, "owned": owns_executor}
        closers: list[Executor] = [executor] if owns_executor else []

        def degrade() -> bool:
            current = state["executor"]
            tail = (DEGRADE_CHAIN[DEGRADE_CHAIN.index(current.name) + 1:]
                    if current.name in DEGRADE_CHAIN
                    else DEGRADE_CHAIN[1:])
            if not tail:
                return False
            replacement = self._build_executor(tail[0])
            closers.append(replacement)
            state["executor"] = replacement
            supervisor.emit("supervision_degrade",
                            from_executor=current.name,
                            to_executor=replacement.name)
            print(f"campaign: executor {current.name!r} unavailable — "
                  f"degrading to {replacement.name!r}", file=sys.stderr)
            return True

        async def dispatch(run_id: str) -> int | None:
            async with semaphore:
                run_dir = self.manifest.run_dir(run_id)
                config_path = run_dir / RUN_CONFIG_NAME
                while True:
                    attempt = self.manifest.runs[run_id]["attempts"] + 1
                    self.manifest.mark(run_id, "running",
                                       owner=supervisor.owner)
                    current = state["executor"]
                    outcome = await asyncio.to_thread(
                        supervisor.attempt, current, run_id, run_dir,
                        config_path, max_steps, attempt,
                    )
                    if (outcome.spawn_failure
                            and supervisor.should_degrade(current)
                            and state["executor"] is current):
                        degrade()
                    if outcome.cls == "done":
                        self.manifest.mark(run_id, "done",
                                           exit_code=outcome.exit_code,
                                           outcome=outcome.as_dict())
                        print(f"campaign: {run_id} done (exit "
                              f"{outcome.exit_code})", file=sys.stderr)
                        return outcome.exit_code
                    retry = supervisor.policy.should_retry(outcome, attempt)
                    self.manifest.mark(run_id, "failed",
                                       exit_code=outcome.exit_code,
                                       outcome=outcome.as_dict())
                    print(f"campaign: {run_id} failed "
                          f"(exit {outcome.exit_code}, {outcome.cls}: "
                          f"{outcome.reason})"
                          + (" — retrying" if retry else ""),
                          file=sys.stderr)
                    if not retry:
                        return outcome.exit_code
                    delay = supervisor.policy.delay(attempt)
                    supervisor.emit("supervision_retry", run_id=run_id,
                                    attempt=attempt,
                                    delay=round(delay, 3))
                    await asyncio.sleep(delay)

        try:
            await asyncio.gather(*(dispatch(rid) for rid in pending))
        finally:
            for ex in closers:
                ex.close()
            writer.close()
        return self.exit_code()

    async def _direct(self, executor: Executor, owns_executor: bool,
                      max_steps: int | None, pending: list[str],
                      semaphore: asyncio.Semaphore) -> int:
        """The unsupervised dispatch path: one attempt per point."""

        async def dispatch(run_id: str) -> int:
            async with semaphore:
                run_dir = self.manifest.run_dir(run_id)
                self.manifest.mark(run_id, "running")
                code = await asyncio.to_thread(
                    executor.execute, run_dir, run_dir / RUN_CONFIG_NAME,
                    max_steps,
                )
                state = "done" if code == EXIT_COMPLETE else "failed"
                self.manifest.mark(run_id, state, exit_code=code)
                print(f"campaign: {run_id} {state} (exit {code})",
                      file=sys.stderr)
                return code

        try:
            await asyncio.gather(*(dispatch(rid) for rid in pending))
        finally:
            if owns_executor:
                executor.close()
        return self.exit_code()

    def exit_code(self) -> int:
        """The campaign-level 0/75/70 rollup of the manifest's states."""
        entries = self.manifest.runs.values()
        if all(e["state"] == "done" for e in entries):
            return EXIT_COMPLETE
        if any(e["state"] == "failed"
               and e["exit_code"] == EXIT_GUARD_ABORT for e in entries):
            return EXIT_GUARD_ABORT
        return EXIT_RESUMABLE

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def aggregate(self) -> list[dict]:
        """Cross-run result rows (see :mod:`repro.campaign.aggregate`)."""
        return aggregate_rows(self.manifest)
