"""Preallocated scratch buffers for the hot advection path.

A directional semi-Lagrangian sweep allocates roughly ten large
temporaries per call — prefix sums, stencil gathers, fractional fluxes,
ghost-padded copies, the flux-difference update.  At one sweep that is
noise; at the six sweeps per Strang step times thousands of steps the
allocator (and the page-faulting of fresh memory) becomes a measurable
tax on the paper's hot loop.

:class:`ScratchArena` is a keyed pool of uninitialized work buffers.
The advection kernels request buffers by ``(key, shape, dtype)``; the
first request allocates, every later request with the same signature
returns the *same* memory.  In steady state — fixed grid, fixed scheme —
every sweep runs allocation-free.

Discipline
----------
* Buffers come back **uninitialized** (whatever the previous call left
  in them); consumers must overwrite every element they read.
* One arena serves **one caller at a time**.  It is deliberately not
  locked: give each worker thread/process of a
  :class:`repro.perf.pencil.PencilEngine` its own arena.
* An arena pins its high-water memory until :meth:`clear` — size it to
  the workload by simply letting the workload make its requests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScratchArena"]


class ScratchArena:
    """Keyed pool of reusable uninitialized NumPy work buffers."""

    __slots__ = ("_pool", "hits", "misses")

    def __init__(self) -> None:
        self._pool: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, key, shape, dtype) -> np.ndarray:
        """Return the pooled buffer for ``(key, shape, dtype)``.

        Contents are unspecified — the caller must fully overwrite.
        ``key`` is any hashable tag distinguishing concurrent uses of
        same-shaped buffers within one computation.
        """
        shape = tuple(shape)
        dt = np.dtype(dtype)
        slot = (key, shape, dt)
        buf = self._pool.get(slot)
        if buf is None:
            self.misses += 1
            buf = np.empty(shape, dtype=dt)
            self._pool[slot] = buf
        else:
            self.hits += 1
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes currently pinned by the pool."""
        return sum(b.nbytes for b in self._pool.values())

    @property
    def n_buffers(self) -> int:
        """Number of distinct pooled buffers."""
        return len(self._pool)

    def clear(self) -> None:
        """Drop every pooled buffer (and reset the hit/miss counters)."""
        self._pool.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Pool health: buffer count, pinned bytes, hit/miss counters."""
        return {
            "n_buffers": self.n_buffers,
            "nbytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScratchArena(buffers={self.n_buffers}, "
            f"pinned={self.nbytes / 2**20:.1f} MiB, "
            f"hits={self.hits}, misses={self.misses})"
        )
