"""Pencil-sharded multicore execution of directional SL sweeps.

The paper decomposes *physical space* across nodes and keeps velocity
space whole on every rank (§5.1.3), so each directional sweep is
embarrassingly parallel over any axis it does not advect.  The
:class:`PencilEngine` is the single-node analog: it cuts the phase-space
array into contiguous pencils along a non-advected axis (the shard
geometry of :func:`repro.parallel.decomposition.pencil_slices`) and
dispatches one serial :func:`repro.core.advection.advect` per pencil
across a worker pool.

Because the advection operator only couples cells *along* the advected
axis, pencils need no halo exchange and every worker executes exactly
the floating-point operations the serial sweep would execute on its
slice — the sharded result is **bitwise-identical** to the serial one
(a property the test suite asserts for every scheme and BC).

Backends
--------
``threads``
    ``ThreadPoolExecutor``; pencils are views of the caller's arrays
    (zero copies).  NumPy releases the GIL inside the array kernels, so
    the sweeps overlap on multicore hosts.  This is the default and the
    fast path.
``processes``
    ``ProcessPoolExecutor`` over POSIX shared memory: f is staged into a
    ``multiprocessing.shared_memory`` block, workers attach and write
    their pencil of the output block in place — the two full-array
    copies (stage in, copy out) are the price of true OS-process
    isolation.  Useful when the kernel is Python-bound (small pencils)
    or a future accelerator backend holds the GIL.
``serial``
    Run in the calling thread (still arena-pooled).  The engine also
    falls back to serial when the array is too small to amortize
    dispatch (``min_shard_bytes``) or has no shardable axis.

Each worker slot owns a private :class:`~repro.perf.arena.ScratchArena`,
so steady-state sweeps are allocation-free in every worker.

Supervision
-----------
Process pools fail in ways thread pools cannot: a worker can be OOM- or
operator-killed (``BrokenProcessPool``), or wedge on a bad node.  The
engine supervises every process sweep: a broken pool or a sweep that
exceeds ``task_timeout`` tears the pool down, waits a bounded
exponential backoff, and retries on a fresh pool up to ``max_retries``
times; when the budget is exhausted the engine **degrades permanently**
(``processes`` → ``threads`` → ``serial``), finishes the sweep on the
surviving backend, and publishes an ``engine_degraded`` telemetry event.
Because every backend executes identical floating-point operations,
degradation never changes the answer — only the wall clock.

Shared-memory segments are registered in a module-level table and
unlinked by an ``atexit`` hook, so segments cannot leak even when the
parent dies mid-``advect`` (the historical leak: ``close()``/``unlink``
lived only on the happy path of the sweep).

``fault_hook`` (an attribute, wired by the chaos harness) is called as
``hook(engine, pool)`` at the start of each *process* sweep — the
injection point for :meth:`repro.runtime.faults.FaultPlan.worker_fault`.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor, wait

import numpy as np

from ..core.advection import SCHEMES, advect
from ..parallel.decomposition import pencil_slices
from .arena import ScratchArena

__all__ = ["PencilEngine", "SweepTimeout"]


class SweepTimeout(RuntimeError):
    """A sharded sweep exceeded the engine's ``task_timeout``."""


def _emit(kind: str, **fields) -> None:
    """Publish a telemetry event (lazy import; no-op outside a run)."""
    try:
        from ..runtime.telemetry import emit_event
    except Exception:  # pragma: no cover - import cycles during teardown
        return
    emit_event(kind, **fields)


# -- shared-memory leak guard ------------------------------------------------
#
# Every segment the engine creates is registered here and deregistered on
# the normal release path; whatever is still registered when the process
# exits (crash mid-advect, exception between create and the finally) is
# unlinked by the atexit hook.  Without this, a SIGKILL'd run leaves
# /dev/shm blocks behind until reboot.

_LIVE_SEGMENTS: dict[int, object] = {}


def _register_segment(shm) -> None:
    _LIVE_SEGMENTS[id(shm)] = shm


def _release_segment(shm) -> None:
    """Close + unlink one segment, tolerating partial prior cleanup."""
    _LIVE_SEGMENTS.pop(id(shm), None)
    try:
        shm.close()
    except BufferError:  # a view still alive; unlink still detaches the name
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


@atexit.register
def _cleanup_leaked_segments() -> None:  # pragma: no cover - exit path
    for shm in list(_LIVE_SEGMENTS.values()):
        _release_segment(shm)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- process-backend worker machinery ---------------------------------------
#
# The worker function must be a module-level callable (picklable by
# reference); each worker process keeps one arena alive across tasks.

_WORKER_ARENA: ScratchArena | None = None


def _attach_shm(name: str):
    from multiprocessing import shared_memory

    try:  # Python >= 3.13: don't double-register with the resource tracker
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - older interpreters
        return shared_memory.SharedMemory(name=name)


def _pencil_worker(task) -> None:
    """Advect one pencil of the shared-memory arrays, in place."""
    global _WORKER_ARENA
    if _WORKER_ARENA is None:
        _WORKER_ARENA = ScratchArena()
    (in_name, out_name, shape, dtype, shard_axis, start, stop,
     shift, axis, scheme, bc, layout) = task
    shm_in = _attach_shm(in_name)
    shm_out = _attach_shm(out_name)
    try:
        f = np.ndarray(shape, dtype=dtype, buffer=shm_in.buf)
        out = np.ndarray(shape, dtype=dtype, buffer=shm_out.buf)
        idx = tuple(
            slice(start, stop) if d == shard_axis else slice(None)
            for d in range(len(shape))
        )
        advect(f[idx], shift, axis, scheme=scheme, bc=bc,
               out=out[idx], arena=_WORKER_ARENA, layout=layout)
    finally:
        shm_in.close()
        shm_out.close()


class PencilEngine:
    """Shard directional sweeps into pencils and run them concurrently.

    Parameters
    ----------
    n_workers:
        Worker pool size; defaults to the CPUs this process may run on.
    backend:
        ``"threads"`` (default), ``"processes"``, or ``"serial"``.
    pencils_per_worker:
        Pencils per worker (>1 trades dispatch overhead for load balance
        when per-pencil cost varies, e.g. mixed-sign shift fields).
    min_shard_bytes:
        Arrays smaller than this run serially — dispatch overhead beats
        the win on small problems (see docs/PERFORMANCE.md).  Set 0 to
        force sharding (the tests do).
    max_retries:
        Process-sweep retry budget: how many times a broken/timed-out
        pool is rebuilt and the sweep re-run before the engine degrades
        to the next backend down.
    backoff_base:
        First retry delay [s]; doubles per retry (bounded exponential).
    task_timeout:
        Wall-clock budget [s] for one sharded sweep; ``None`` (default)
        waits forever.  Exceeding it counts as a worker failure.
    """

    #: Degradation ladder: each backend's fallback when supervision
    #: exhausts its retry budget.  Serial has nowhere left to go.
    FALLBACK = {"processes": "threads", "threads": "serial"}

    def __init__(
        self,
        n_workers: int | None = None,
        backend: str = "threads",
        pencils_per_worker: int = 1,
        min_shard_bytes: int = 1 << 16,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        task_timeout: float | None = None,
    ) -> None:
        if backend not in ("threads", "processes", "serial"):
            raise ValueError(f"unknown backend {backend!r}")
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if pencils_per_worker < 1:
            raise ValueError("pencils_per_worker must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.n_workers = int(n_workers) if n_workers else _available_cores()
        self.backend = backend
        self.pencils_per_worker = int(pencils_per_worker)
        self.min_shard_bytes = int(min_shard_bytes)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.task_timeout = task_timeout
        self._executor = None
        self._arenas: list[ScratchArena] = []
        #: plan of the most recent ``advect`` call, for tests/benchmarks:
        #: dict with backend / shard_axis / n_pencils (or None if serial).
        self.last_plan: dict | None = None
        #: chaos-harness injection point: called as ``hook(self, pool)``
        #: at the start of each process sweep (see module docstring).
        self.fault_hook = None
        #: cumulative supervision counters (survive degradation).
        self.retries = 0
        #: backends abandoned by supervision, in order ("processes", ...).
        self.degradations: list[str] = []

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the engine is reusable)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "PencilEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def _pool(self):
        if self._executor is None:
            if self.backend == "threads":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="pencil",
                )
            else:
                from concurrent.futures import ProcessPoolExecutor
                import multiprocessing as mp

                ctx = mp.get_context(
                    "fork" if "fork" in mp.get_all_start_methods() else "spawn"
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=ctx
                )
        return self._executor

    def _arena(self, slot: int) -> ScratchArena:
        while len(self._arenas) <= slot:
            self._arenas.append(ScratchArena())
        return self._arenas[slot]

    # -- planning -------------------------------------------------------

    @staticmethod
    def pick_shard_axis(shape: tuple[int, ...], axis: int) -> int | None:
        """Longest non-advected axis (ties favor the leading — spatial —
        axes, mirroring the paper's space-only decomposition)."""
        best, best_len = None, 1
        for d, ln in enumerate(shape):
            if d == axis:
                continue
            if ln > best_len:
                best, best_len = d, ln
        return best

    def _plan(self, f: np.ndarray, sh: np.ndarray, axis: int, shard_axis):
        """Decide shard axis and pencil count; None means run serial."""
        if self.backend == "serial" or self.n_workers < 2:
            return None
        if f.nbytes < self.min_shard_bytes:
            return None
        if shard_axis is None:
            shard_axis = self.pick_shard_axis(f.shape, axis)
        else:
            shard_axis %= f.ndim
            if shard_axis == axis:
                raise ValueError("cannot shard along the advected axis")
        if shard_axis is None:
            return None
        parts = min(
            self.n_workers * self.pencils_per_worker, f.shape[shard_axis]
        )
        if parts < 2:
            return None
        return shard_axis, parts

    def _resolve_sweep_layout(self, f: np.ndarray, axis: int, layout) -> str:
        """Decide the sweep's layout once, centrally.

        The deciding engine records counters/telemetry for the *whole*
        sweep; workers then receive the resolved mode as a forced string
        (``"packed"``/``None``), which :func:`advect` applies without
        recording — one sweep, one decision, however many pencils.
        Each packed worker copies its shard into contiguous scratch
        exactly once and runs every kernel stage on that copy.
        """
        if layout is None:
            return "in_place"
        from .layout import LayoutEngine, get_default_layout

        eligible = f.ndim >= 2
        if isinstance(layout, LayoutEngine):
            return layout.decide(f, axis, eligible=eligible)
        if layout == "in_place":
            return "in_place"
        if layout == "packed":
            return "packed" if eligible else "in_place"
        if layout == "auto":
            return get_default_layout().decide(f, axis, eligible=eligible)
        raise ValueError(f"unknown layout {layout!r}")

    @staticmethod
    def _slice_shift(sh: np.ndarray, shard_axis: int, sl: slice):
        if sh.ndim and sh.shape[shard_axis] != 1:
            idx = tuple(
                sl if d == shard_axis else slice(None) for d in range(sh.ndim)
            )
            return sh[idx]
        return sh

    # -- execution ------------------------------------------------------

    def advect(
        self,
        f: np.ndarray,
        shift,
        axis: int,
        scheme: str = "slmpp5",
        bc: str = "periodic",
        out: np.ndarray | None = None,
        shard_axis: int | None = None,
        layout=None,
    ) -> np.ndarray:
        """Sharded equivalent of :func:`repro.core.advection.advect`.

        Returns the same result, bitwise, for any scheme/BC/shift.  The
        engine requires the result shape to equal ``f.shape`` (shift
        axes of size 1 or matching f), which is the solver's case; an
        exotic broadcast falls back to the serial kernel.

        ``layout`` follows :func:`advect`'s parameter: ``None``,
        ``"auto"``/``"packed"``/``"in_place"``, or a
        :class:`~repro.perf.layout.LayoutEngine`.  The decision is made
        once per sweep on the full array (its strides are representative
        — sharding never slices the advected axis) and the resolved mode
        is forced onto every pencil.
        """
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}")
        axis %= f.ndim
        sh = np.asarray(shift)
        broadcast_ok = sh.ndim == 0 or (
            sh.ndim == f.ndim
            and all(s in (1, fs) for s, fs in zip(sh.shape, f.shape))
        )
        plan = None
        if broadcast_ok:
            plan = self._plan(f, sh, axis, shard_axis)
        if plan is None:
            self.last_plan = None
            return advect(
                f, shift, axis, scheme=scheme, bc=bc, out=out,
                arena=self._arena(0), layout=layout,
            )
        mode = self._resolve_sweep_layout(f, axis, layout)
        lay = "packed" if mode == "packed" else None
        shard, parts = plan
        slices = pencil_slices(f.shape[shard], parts)
        if out is None:
            out = np.empty_like(f)
        elif out.shape != f.shape or out.dtype != f.dtype:
            raise ValueError(
                f"out has shape {out.shape}/{out.dtype}, "
                f"engine needs {f.shape}/{f.dtype}"
            )
        self.last_plan = {
            "backend": self.backend,
            "shard_axis": shard,
            "n_pencils": len(slices),
            "layout": mode,
        }
        if self.backend == "threads":
            self._run_threads(f, sh, axis, scheme, bc, out, shard, slices, lay)
        else:
            self._run_processes(f, sh, axis, scheme, bc, out, shard, slices, lay)
        return out

    # -- supervision ----------------------------------------------------

    def _await(self, futures) -> None:
        """Wait for a sweep's futures within budget; re-raise failures."""
        done, pending = wait(futures, timeout=self.task_timeout)
        if pending:
            for fut in pending:
                fut.cancel()
            raise SweepTimeout(
                f"{len(pending)}/{len(futures)} pencils still pending "
                f"after {self.task_timeout}s"
            )
        for fut in done:
            fut.result()  # re-raise the first worker failure

    def _teardown_pool(self) -> None:
        """Abandon the (possibly broken/stalled) pool without blocking."""
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken-pool teardown
                pass

    def _degrade(self, reason: str) -> None:
        """Step down the backend ladder permanently; record and publish."""
        fallback = self.FALLBACK[self.backend]
        self.degradations.append(self.backend)
        _emit(
            "engine_degraded",
            from_backend=self.backend, to_backend=fallback, reason=reason,
        )
        self.backend = fallback

    def _run_serial(self, f, sh, axis, scheme, bc, out, lay=None) -> None:
        """Last-resort path: the plain serial kernel (same bits)."""
        self.last_plan = None
        advect(f, sh, axis, scheme=scheme, bc=bc, out=out,
               arena=self._arena(0), layout=lay)

    def _run_threads(self, f, sh, axis, scheme, bc, out, shard, slices,
                     lay=None):
        try:
            self._threads_sweep(
                f, sh, axis, scheme, bc, out, shard, slices, lay
            )
        except (BrokenExecutor, SweepTimeout) as exc:
            # Thread pools don't lose workers; the only infra failure is
            # a stall past task_timeout — no point retrying a stall on
            # the same pool, degrade straight to serial and finish.
            self._teardown_pool()
            self.retries += 1
            _emit("worker_failure", backend="threads", error=repr(exc))
            self._degrade(repr(exc))
            self._run_serial(f, sh, axis, scheme, bc, out, lay)

    def _threads_sweep(self, f, sh, axis, scheme, bc, out, shard, slices,
                       lay=None):
        def one(slot: int, sl: slice) -> None:
            idx = tuple(
                sl if d == shard else slice(None) for d in range(f.ndim)
            )
            advect(
                f[idx], self._slice_shift(sh, shard, sl), axis,
                scheme=scheme, bc=bc, out=out[idx], arena=self._arena(slot),
                layout=lay,
            )

        self._await([
            self._pool().submit(one, slot, sl)
            for slot, sl in enumerate(slices)
        ])

    def _run_processes(self, f, sh, axis, scheme, bc, out, shard, slices,
                       lay=None):
        """Process sweep under supervision: retry, rebuild, degrade.

        A worker death (``BrokenExecutor``) or sweep timeout tears the
        pool down and retries on a fresh one after an exponential
        backoff; ``max_retries`` failures degrade the engine to threads
        (then serial) for this sweep and every one after.  The output
        array is only written on a fully successful sweep, so a retry
        (or the degraded backend) always starts from pristine inputs.
        """
        delay = self.backoff_base
        for attempt in range(self.max_retries + 1):
            try:
                self._processes_sweep(
                    f, sh, axis, scheme, bc, out, shard, slices, lay
                )
                return
            except (BrokenExecutor, SweepTimeout) as exc:
                self._teardown_pool()
                self.retries += 1
                _emit(
                    "worker_failure",
                    backend="processes", attempt=attempt, error=repr(exc),
                )
                if attempt >= self.max_retries:
                    self._degrade(repr(exc))
                    break
                time.sleep(delay)
                delay *= 2.0
        # Degraded mid-sweep: finish on the surviving backend (the result
        # is bitwise-identical on every backend, so nothing is lost but
        # wall clock).
        if self.backend == "threads":
            self._run_threads(f, sh, axis, scheme, bc, out, shard, slices, lay)
        else:
            self._run_serial(f, sh, axis, scheme, bc, out, lay)

    def _processes_sweep(self, f, sh, axis, scheme, bc, out, shard, slices,
                         lay=None):
        from multiprocessing import shared_memory

        shm_in = shared_memory.SharedMemory(create=True, size=f.nbytes)
        _register_segment(shm_in)
        shm_out = shared_memory.SharedMemory(create=True, size=f.nbytes)
        _register_segment(shm_out)
        try:
            stage = np.ndarray(f.shape, dtype=f.dtype, buffer=shm_in.buf)
            stage[...] = f
            del stage  # release the buffer view before close()
            tasks = [
                (
                    shm_in.name, shm_out.name, f.shape, f.dtype.str, shard,
                    sl.start, sl.stop,
                    np.ascontiguousarray(self._slice_shift(sh, shard, sl))
                    if sh.ndim else sh,
                    axis, scheme, bc, lay,
                )
                for sl in slices
            ]
            pool = self._pool()
            if self.fault_hook is not None:
                self.fault_hook(self, pool)
            self._await([pool.submit(_pencil_worker, t) for t in tasks])
            result = np.ndarray(f.shape, dtype=f.dtype, buffer=shm_out.buf)
            out[...] = result
            del result
        finally:
            _release_segment(shm_in)
            _release_segment(shm_out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PencilEngine(backend={self.backend!r}, "
            f"n_workers={self.n_workers}, "
            f"pencils_per_worker={self.pencils_per_worker})"
        )
