"""Plan-cached, worker-threaded FFT backend for the spectral field solves.

Every Strang step of a Vlasov-Poisson driver solves the Poisson equation
twice (paper Eq. 2/5), and the PM half of the TreePM split solves it once
per force evaluation.  Those solves are pure FFT convolutions, so their
cost is set by (a) how many transforms each solve performs and (b) how
fast one transform runs.  This module owns (b); the fused
:meth:`repro.gravity.poisson.PeriodicPoissonSolver.solve_fields` owns (a).

:class:`SpectralBackend` wraps ``scipy.fft`` (pocketfft) when available,
falling back to ``numpy.fft`` otherwise — nothing is installed, only
detected:

* **worker threads** — every transform passes ``workers=`` through to
  pocketfft, which splits the independent 1-D passes of a multi-D
  transform across threads (``REPRO_FFT_WORKERS`` overrides the
  default of all available cores);
* **plan cache** — pocketfft computes twiddle-factor plans per
  (shape, axis) signature and caches them process-wide; a long-lived
  backend keeps those plans warm, and the backend records the
  signatures it has executed so the cache state is observable
  (:meth:`SpectralBackend.stats`);
* **pooled k-space workspaces** — the complex products of a field
  solve (``phi_k`` gradients, kernel multiplies) draw reusable buffers
  from a :class:`repro.perf.arena.ScratchArena`, so steady-state solves
  stop churning the allocator exactly like the advection sweeps do.

The backend also counts its forward/inverse transforms
(:attr:`n_forward` / :attr:`n_inverse`), which is what the FFT-budget
regression tests assert against: a field solve must perform **exactly
one** forward transform of the source, never ``1 + dim``.

A **per-thread** default backend serves every solver that is not handed
an explicit one; swap it with :func:`set_default_backend` (tests install
a counting instance, benchmarks a tuned one).  Per-thread, not
per-process, because the pooled workspaces are single-caller scratch:
concurrent in-process runs (the campaign layer's thread executor) must
not share them.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from .arena import ScratchArena

try:  # pragma: no cover - exercised implicitly on hosts with scipy
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _scipy_fft = None

__all__ = [
    "SpectralBackend",
    "get_default_backend",
    "set_default_backend",
]


def _default_workers() -> int:
    """Worker-thread count: ``REPRO_FFT_WORKERS`` or all available cores."""
    env = os.environ.get("REPRO_FFT_WORKERS", "")
    if env:
        return max(1, int(env))
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class SpectralBackend:
    """Counting FFT executor with worker threads and pooled workspaces.

    Parameters
    ----------
    workers:
        Threads per transform (scipy.fft ``workers=``).  ``None`` reads
        ``REPRO_FFT_WORKERS`` or uses every available core; the numpy
        fallback ignores it (numpy.fft is single-threaded).
    arena:
        Scratch pool for the complex k-space workspaces; a private one
        is created when omitted.  One backend serves one caller at a
        time (same discipline as :class:`~repro.perf.arena.ScratchArena`).
    """

    __slots__ = ("workers", "arena", "n_forward", "n_inverse", "n_fallbacks",
                 "_plans")

    def __init__(self, workers: int | None = None,
                 arena: ScratchArena | None = None) -> None:
        self.workers = _default_workers() if workers is None else int(workers)
        self.arena = ScratchArena() if arena is None else arena
        self.n_forward = 0
        self.n_inverse = 0
        #: transforms where scipy.fft raised and the numpy path answered
        #: instead (see :meth:`_fallback`).
        self.n_fallbacks = 0
        #: (kind, shape) signatures executed at least once — the plans
        #: pocketfft has built and cached for this process.
        self._plans: set[tuple] = set()

    # ------------------------------------------------------------------

    @property
    def library(self) -> str:
        """Which FFT library backs the transforms."""
        return "scipy.fft" if _scipy_fft is not None else "numpy.fft"

    def _fallback(self, kind: str, exc: Exception) -> None:
        """Record one scipy-path failure answered by numpy instead.

        A scipy transform failing (a worker-pool hiccup, a platform bug)
        must degrade the run's speed, never its correctness or survival:
        the same transform is re-run on ``numpy.fft``, the ``fallbacks``
        counter ticks, and a telemetry warning is published.
        """
        self.n_fallbacks += 1
        try:
            from ..runtime.telemetry import emit_event

            emit_event(
                "fft_fallback", transform=kind,
                error=f"{type(exc).__name__}: {exc}",
            )
        except Exception:  # pragma: no cover - teardown-order imports
            pass

    def rfftn(self, x: np.ndarray, axes=None) -> np.ndarray:
        """Forward real-to-complex N-D transform (counted)."""
        self.n_forward += 1
        self._plans.add(("rfftn", x.shape))
        if _scipy_fft is not None:
            try:
                return _scipy_fft.rfftn(x, axes=axes, workers=self.workers)
            except Exception as exc:
                self._fallback("rfftn", exc)
        return np.fft.rfftn(x, axes=axes)

    def irfftn(self, x_k: np.ndarray, s, axes=None) -> np.ndarray:
        """Inverse complex-to-real N-D transform (counted).

        Evaluated as the *separable* composition — one complex ``ifft``
        per leading axis, then one ``irfft`` along the last axis — rather
        than the fused ``irfftn`` kernel.  The two differ by ~1 ulp, and
        the separable order is the one the distributed pencil path of
        :class:`repro.parallel.domain.DomainEngine` reproduces pass by
        pass, so using it here keeps serial and distributed field solves
        bitwise identical by construction (the bitwise-vs-serial engine
        gates depend on this).
        """
        self.n_inverse += 1
        self._plans.add(("irfftn", tuple(s)))
        s = tuple(s)
        axes = tuple(range(len(s))) if axes is None else tuple(axes)
        if _scipy_fft is not None:
            try:
                out = x_k
                for n, ax in zip(s[:-1], axes[:-1]):
                    out = _scipy_fft.ifft(out, n=n, axis=ax, workers=self.workers)
                return _scipy_fft.irfft(
                    out, n=s[-1], axis=axes[-1], workers=self.workers
                )
            except Exception as exc:
                self._fallback("irfftn", exc)
        out = x_k
        for n, ax in zip(s[:-1], axes[:-1]):
            out = np.fft.ifft(out, n=n, axis=ax)
        return np.fft.irfft(out, n=s[-1], axis=axes[-1])

    def kspace_product(self, key, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a * b`` into a pooled complex workspace (broadcasting ok).

        ``key`` distinguishes concurrent same-shaped products within one
        solve; the result is only valid until the next request with the
        same signature.
        """
        shape = np.broadcast_shapes(a.shape, b.shape)
        out = self.arena.take(("fft", key), shape, np.complex128)
        return np.multiply(a, b, out=out)

    # ------------------------------------------------------------------

    def reset_counts(self) -> None:
        """Zero the transform counters (the plan record is kept)."""
        self.n_forward = 0
        self.n_inverse = 0

    def counters(self) -> dict:
        """Just the transform counters — the per-step telemetry export.

        Cheap (no workspace introspection) and flat, so the runtime's
        JSONL stream can embed it verbatim every step.
        """
        return {
            "n_forward": self.n_forward,
            "n_inverse": self.n_inverse,
            "n_plans": len(self._plans),
            "fallbacks": self.n_fallbacks,
        }

    def stats(self) -> dict:
        """Counters, plan-cache population and workspace-pool health."""
        return {
            "library": self.library,
            "workers": self.workers,
            **self.counters(),
            "workspace": self.arena.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpectralBackend({self.library}, workers={self.workers}, "
            f"fwd={self.n_forward}, inv={self.n_inverse}, "
            f"plans={len(self._plans)})"
        )


# The default backend is per-thread, not per-process: its ScratchArena
# pools the k-space workspaces of `kspace_product`, and two concurrent
# same-shaped field solves sharing one pool would overwrite each other's
# products mid-solve (pocketfft's own plan cache is process-wide and
# thread-safe; only the counters and workspaces live here).
_DEFAULTS = threading.local()


def get_default_backend() -> SpectralBackend:
    """This thread's default backend for solvers without an explicit one."""
    backend = getattr(_DEFAULTS, "backend", None)
    if backend is None:
        backend = _DEFAULTS.backend = SpectralBackend()
    return backend


def set_default_backend(backend: SpectralBackend | None) -> SpectralBackend | None:
    """Install (or with ``None`` reset) this thread's default backend.

    Returns the previous default so callers can restore it — the
    FFT-counting test fixture does exactly that.
    """
    previous = getattr(_DEFAULTS, "backend", None)
    _DEFAULTS.backend = backend
    return previous
