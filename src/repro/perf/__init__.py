"""Single-node performance substrate: scratch arenas and pencil sharding.

The paper's performance model has three pillars — SIMD over non-advected
indices, spatial domain decomposition with velocity space kept whole,
and bandwidth-bounded float32 streaming.  NumPy gives us the first; this
package supplies the single-node analog of the second and stops the
allocator from taxing the third:

* :class:`~repro.perf.arena.ScratchArena` — preallocated stencil /
  flux / prefix-sum buffers so repeated ``advect`` calls are
  allocation-free in steady state;
* :class:`~repro.perf.pencil.PencilEngine` — shards any directional
  sweep into pencils along a non-advected axis and dispatches them
  across worker threads/processes, bitwise-identical to the serial
  kernel;
* :class:`~repro.perf.fft.SpectralBackend` — plan-cached, worker-
  threaded FFT executor (scipy.fft pocketfft with a numpy fallback)
  behind every field solve, with pooled complex workspaces and
  transform counters the FFT-budget tests assert against;
* :class:`~repro.perf.layout.LayoutEngine` — the LAT analog (paper
  §5.4): per-sweep contiguity decisions that pack badly-strided axes
  into contiguous scratch with cache-blocked transposes, bitwise-
  identical to the in-place path.

See docs/PERFORMANCE.md ("The pencil engine", "The fused spectral
pipeline") for when each backend wins.
"""

from .arena import ScratchArena
from .fft import SpectralBackend, get_default_backend, set_default_backend
from .layout import LayoutDecision, LayoutEngine, get_default_layout, set_default_layout
from .pencil import PencilEngine

__all__ = [
    "LayoutDecision",
    "LayoutEngine",
    "PencilEngine",
    "ScratchArena",
    "SpectralBackend",
    "get_default_backend",
    "get_default_layout",
    "set_default_backend",
    "set_default_layout",
]
