"""Contiguity-aware sweep layout — the LAT analog (paper §5.4, Figs. 2-3).

Every directional sweep in :func:`repro.core.advection.advect` runs on an
``np.moveaxis`` view with the advected axis last.  For the outer
phase-space axes that view is enormously strided: on a ``(N,)*6`` grid
the x-sweep walks memory with an ``N**5``-element stride, the exact
cache-hostile access pattern the paper's u_z direction exhibits before
the "load and transpose" (LAT) method (§5.4) packs it contiguous.

:class:`LayoutEngine` is the memory-level analog of LAT.  Per sweep it
decides — from the advected-axis stride and a size threshold — between:

``in_place``
    Run the kernels directly on the strided view (correct always; best
    when the array fits in cache or the axis is already contiguous).
``packed``
    Copy the axis-last view into contiguous scratch with a cache-blocked
    transpose (block edges from
    :func:`repro.simd.transpose.pick_block_shape`, the same tile model
    as the 16x16 register transpose), run every kernel on contiguous
    memory, and fuse the transpose-back into the final flux-difference
    update (one blocked ``np.subtract`` straight into the strided
    output — no separate unpack traversal).

Both modes execute the identical floating-point operations in the
identical order; only the buffer placement differs, so results are
**bitwise-identical** (the same contract the :class:`ScratchArena`
already meets, asserted by ``tests/test_layout_engine.py``).

Scratch is pooled in the caller's :class:`~repro.perf.arena.ScratchArena`;
``layout/pack`` and ``layout/unpack`` :class:`StepTimer` sections record
the transpose cost; every decision is published as a ``layout_decision``
telemetry event (mode, axis, stride, bytes moved) so
:func:`repro.runtime.telemetry.summarize` can report the packed fraction
of a run.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import NamedTuple

import numpy as np

from ..simd.transpose import pick_block_shape

__all__ = [
    "LayoutDecision",
    "LayoutEngine",
    "get_default_layout",
    "set_default_layout",
]


class LayoutDecision(NamedTuple):
    """Outcome of one per-sweep layout decision."""

    mode: str           # "in_place" | "packed"
    axis: int           # the advected axis
    stride_bytes: int   # |stride| of the advected axis in f
    nbytes: int         # payload of f
    reason: str         # why this mode won


def _emit(kind: str, **fields) -> None:
    """Publish a telemetry event (lazy import; no-op outside a run)."""
    try:
        from ..runtime.telemetry import emit_event
    except Exception:  # pragma: no cover - import cycles during teardown
        return
    emit_event(kind, **fields)


class LayoutEngine:
    """Per-sweep contiguity decisions plus the blocked pack/unpack kernels.

    Parameters
    ----------
    mode:
        ``"auto"`` (threshold model, default), ``"packed"`` (always pack
        eligible sweeps), or ``"in_place"`` (never pack).  All three are
        bitwise-identical; only wall clock differs.
    min_packed_bytes:
        ``auto`` packs only arrays at least this large — below it the
        whole problem sits in the outer cache and strided access costs
        nothing (measured flat on this repo's benchmarks; see
        docs/PERFORMANCE.md).
    min_stride_bytes:
        ``auto`` packs only when the advected-axis stride is at least
        this many bytes (default one 64-byte cache line: smaller strides
        still land consecutive elements on the same line).
    block_bytes:
        Cache budget handed to :func:`pick_block_shape` for the blocked
        copy tiles.
    timer:
        Optional :class:`repro.diagnostics.timers.StepTimer`; pack and
        unpack time is recorded under ``layout/pack`` / ``layout/unpack``
        (qualified by the enclosing sweep section when nested).
    """

    MODES = ("auto", "packed", "in_place")

    def __init__(
        self,
        mode: str = "auto",
        min_packed_bytes: int = 1 << 25,
        min_stride_bytes: int = 64,
        block_bytes: int = 1 << 18,
        timer=None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown layout mode {mode!r}; choose from {self.MODES}")
        self.mode = mode
        self.min_packed_bytes = int(min_packed_bytes)
        self.min_stride_bytes = int(min_stride_bytes)
        self.block_bytes = int(block_bytes)
        self.timer = timer
        #: cumulative decision counters
        self.packed_sweeps = 0
        self.in_place_sweeps = 0
        #: bytes actually moved through the blocked transpose kernels
        self.bytes_transposed = 0
        self.last_decision: LayoutDecision | None = None

    # -- decision -------------------------------------------------------

    def decide(self, f: np.ndarray, axis: int, eligible: bool = True) -> str:
        """Pick the layout for one sweep; records counters and telemetry.

        ``eligible`` is the caller's structural go/no-go (the kernel can
        only pack sweeps whose result shape equals ``f.shape``); the
        engine layers its cost model on top.
        """
        ax = axis % f.ndim if f.ndim else 0
        stride = abs(f.strides[ax]) if f.ndim else 0
        contiguous = f.ndim == 0 or stride <= f.itemsize
        if not eligible or contiguous:
            mode, reason = "in_place", ("contiguous" if eligible else "ineligible")
        elif self.mode == "in_place":
            mode, reason = "in_place", "forced"
        elif self.mode == "packed":
            mode, reason = "packed", "forced"
        elif f.nbytes < self.min_packed_bytes:
            mode, reason = "in_place", "below size threshold"
        elif stride < self.min_stride_bytes:
            mode, reason = "in_place", "below stride threshold"
        else:
            mode, reason = "packed", "strided and large"
        decision = LayoutDecision(mode, ax, stride, f.nbytes, reason)
        self.last_decision = decision
        if mode == "packed":
            self.packed_sweeps += 1
        else:
            self.in_place_sweeps += 1
        _emit(
            "layout_decision",
            mode=mode,
            axis=ax,
            stride_bytes=stride,
            nbytes=f.nbytes,
            bytes_moved=2 * f.nbytes if mode == "packed" else 0,
            reason=reason,
        )
        return mode

    def stats(self) -> dict[str, int]:
        """Cumulative decision and traffic counters."""
        total = self.packed_sweeps + self.in_place_sweeps
        return {
            "packed_sweeps": self.packed_sweeps,
            "in_place_sweeps": self.in_place_sweeps,
            "packed_fraction": self.packed_sweeps / total if total else 0.0,
            "bytes_transposed": self.bytes_transposed,
        }

    # -- blocked transpose kernels --------------------------------------

    def _timed(self, name: str):
        return self.timer.section(name) if self.timer is not None else nullcontext()

    def blocked_copy(self, dst: np.ndarray, src: np.ndarray) -> None:
        """``dst[...] = src`` tiled over the trailing two axes.

        The pack copy reads huge-stride source columns and writes
        contiguous destination rows (or vice versa on unpack); tiling
        the trailing two axes — the strided pair a ``moveaxis`` view
        exposes — keeps each tile's working set inside ``block_bytes``.
        Leading axes ride inside each slice assignment, where NumPy
        iterates them outermost.  Plain elementwise copies, so the
        result is exactly ``dst[...] = src``.
        """
        if dst.ndim < 2:
            dst[...] = src
            return
        rows, cols = dst.shape[-2], dst.shape[-1]
        tr, tc = pick_block_shape(rows, cols, dst.itemsize, self.block_bytes)
        if tr >= rows and tc >= cols:
            dst[...] = src
            return
        for r0 in range(0, rows, tr):
            r1 = min(r0 + tr, rows)
            for c0 in range(0, cols, tc):
                c1 = min(c0 + tc, cols)
                dst[..., r0:r1, c0:c1] = src[..., r0:r1, c0:c1]

    def pack(self, fw: np.ndarray, arena=None) -> np.ndarray:
        """Blocked copy of the axis-last view into contiguous scratch."""
        if arena is None:
            buf = np.empty(fw.shape, dtype=fw.dtype)
        else:
            buf = arena.take(("layout", "pack"), fw.shape, fw.dtype)
        self.pack_into(buf, fw)
        return buf

    def pack_into(self, dst: np.ndarray, src: np.ndarray) -> None:
        """Timed blocked copy into a caller-provided destination (the
        zero-bc ghost pad doubles as the pack)."""
        with self._timed("layout/pack"):
            self.blocked_copy(dst, src)
        self.bytes_transposed += dst.nbytes

    def unpack_subtract(
        self, fw: np.ndarray, d: np.ndarray, out_w: np.ndarray
    ) -> None:
        """Fused transpose-back: ``out_w = fw - d`` tiled into strided out.

        The final flux-difference update of the sweep doubles as the
        unpack — one blocked ``np.subtract`` writes the strided output
        view directly, instead of a contiguous subtract plus a second
        full-array transpose traversal.  Elementwise, so bitwise equal
        to ``np.subtract(fw, d, out=out_w)``.
        """
        with self._timed("layout/unpack"):
            if out_w.ndim < 2:
                np.subtract(fw, d, out=out_w)
            else:
                rows, cols = out_w.shape[-2], out_w.shape[-1]
                tr, tc = pick_block_shape(
                    rows, cols, out_w.itemsize, self.block_bytes
                )
                if tr >= rows and tc >= cols:
                    np.subtract(fw, d, out=out_w)
                else:
                    for r0 in range(0, rows, tr):
                        r1 = min(r0 + tr, rows)
                        for c0 in range(0, cols, tc):
                            c1 = min(c0 + tc, cols)
                            np.subtract(
                                fw[..., r0:r1, c0:c1],
                                d[..., r0:r1, c0:c1],
                                out=out_w[..., r0:r1, c0:c1],
                            )
        self.bytes_transposed += out_w.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LayoutEngine(mode={self.mode!r}, "
            f"packed={self.packed_sweeps}, in_place={self.in_place_sweeps})"
        )


# -- per-thread default --------------------------------------------------
#
# `advect(layout="packed")` from a pencil worker needs the blocked-copy
# machinery but must not record decisions (the engine that sharded the
# sweep already did); the default carries the kernels, timer-less.  It is
# per-thread, not per-process: the engine's decision history, counters
# and timers are single-caller state, and concurrent in-process runs
# (the campaign layer's thread executor) must not interleave them.

_DEFAULTS = threading.local()


def get_default_layout() -> LayoutEngine:
    """This thread's engine backing plain-string ``layout=`` modes."""
    engine = getattr(_DEFAULTS, "engine", None)
    if engine is None:
        engine = _DEFAULTS.engine = LayoutEngine()
    return engine


def set_default_layout(engine: LayoutEngine | None) -> LayoutEngine | None:
    """Swap this thread's default engine; returns the previous one."""
    prev = getattr(_DEFAULTS, "engine", None)
    _DEFAULTS.engine = engine
    return prev
