"""Snapshot and checkpoint I/O with timing.

The paper reports end-to-end times *including I/O* (733-782 s of the
full-system runs), so I/O is a first-class, timed subsystem.  Snapshots
follow the production convention: particles and *moment* fields are
dumped (never the 6-D f itself — see the machine model's I/O notes);
checkpoints additionally carry the full distribution function so a run
can resume bit-exactly.

Format: a single ``.npz`` container with a JSON-encoded header —
self-describing, portable, append-free.  Snapshots can alternatively be
written **chunked** (:func:`write_snapshot_chunked`): each moment field
is split into per-slab ``.npy`` chunks along its leading spatial axis
under one directory, described by a ``manifest.json``, so a reader
fetching one slab of one field (:func:`read_snapshot_slab`) touches one
small file instead of decompressing the whole container — the access
pattern of the serving tier (:mod:`repro.serve`).  :func:`read_snapshot`
accepts both forms transparently.

Writes are **atomic**: the container is staged to a temporary file in
the destination directory and moved into place with ``os.replace``, so
an interrupted write can never leave a truncated snapshot — and never
corrupt an existing checkpoint being overwritten (the previous file
survives intact until the replace).  Writers also return the path that
actually exists on disk: ``np.savez`` silently appends ``.npz`` to
suffix-less names, which used to make the returned path (and
``path.stat()`` with a timer attached) point at a nonexistent file.

Integrity: version-3 headers carry a per-array CRC32 checksum computed
over the exact bytes stored, and readers verify every array against it
(:class:`SnapshotIntegrityError` on mismatch) — so a bit-flip on disk is
*detected* rather than silently resumed from.  Corrupt containers can be
moved aside with :func:`quarantine` (rename to ``*.corrupt``), which
takes them out of the restart chain while keeping them for post-mortem.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.mesh import PhaseSpaceGrid
from ..core import moments
from ..nbody.particles import ParticleSet

#: Format version written into every header.
#:
#: * v1 — checkpoints carried ``a`` and ``step`` only; enough for the
#:   hybrid driver (whose clock *is* the scale factor) but lossy for the
#:   plasma/static drivers, which accumulate a proper ``time``.
#: * v2 — adds ``time`` (the driver's accumulated proper time, exact
#:   bits) and a free-form ``extra`` dict (scenario name, schedule
#:   position, anything the orchestration layer needs to resume).
#:   Readers backfill ``time=0.0`` / ``extra={}`` for v1 files, so old
#:   checkpoints stay loadable.
#: * v3 — adds ``checksums``: a per-array CRC32 (of the stored bytes)
#:   that readers verify on load.  v2/v1 files (no ``checksums`` key)
#:   are still accepted and simply skip the verification.
FORMAT_VERSION = 3

#: Global write/verify switch: ``REPRO_SNAPSHOT_CRC=0`` disables both
#: computing checksums on write and verifying them on read (an escape
#: hatch for benchmarking the tax and for pathological I/O systems).
CHECKSUMS_ENABLED = os.environ.get("REPRO_SNAPSHOT_CRC", "1") != "0"


class SnapshotIntegrityError(ValueError):
    """A stored array's bytes do not match its header checksum."""


def _crc32(arr: np.ndarray) -> int:
    """CRC32 of an array's C-order bytes (what lands in the container)."""
    return zlib.crc32(np.ascontiguousarray(arr)) & 0xFFFFFFFF


def _array_checksums(payload: dict) -> dict[str, int]:
    """Per-array CRC32 map over everything but the header itself."""
    return {
        name: _crc32(arr)
        for name, arr in payload.items()
        if name != "header"
    }


def _verify_checksums(path: Path, header: dict, arrays: dict) -> None:
    """Check loaded arrays against the v3 header checksums.

    Older headers (no ``checksums`` key) verify trivially.  ``arrays``
    holds the already-deserialized arrays — the exact bytes a resume
    would adopt — so verification costs one CRC pass, not a second read.
    """
    if not CHECKSUMS_ENABLED:
        return
    checksums = header.get("checksums")
    if not checksums:
        return
    for name, expected in checksums.items():
        if name not in arrays:
            raise SnapshotIntegrityError(
                f"{path}: array {name!r} listed in header checksums is missing"
            )
        actual = _crc32(arrays[name])
        if actual != int(expected):
            raise SnapshotIntegrityError(
                f"{path}: array {name!r} fails its checksum "
                f"(stored crc32={int(expected):#010x}, read {actual:#010x}) — "
                "the file was corrupted after it was written"
            )


#: Suffix appended to quarantined (checksum- or format-corrupt) files.
QUARANTINE_SUFFIX = ".corrupt"


def quarantine(path: str | Path) -> Path:
    """Move a corrupt container out of the restart chain.

    Renames ``ck_00000010.npz`` to ``ck_00000010.npz.corrupt`` — the
    checkpoint globs no longer match it, so resume scans skip it without
    re-reading, while the bytes stay on disk for post-mortem.  Returns
    the new path.  Idempotent-ish: an existing quarantine target is
    overwritten (same corrupt file, re-detected).
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    os.replace(path, target)
    return target


def _atomic_savez(path: Path, payload: dict) -> Path:
    """Write an ``.npz`` container atomically; return the real final path.

    Mirrors ``np.savez``'s suffix behavior explicitly (append ``.npz``
    when missing) so the caller gets the path that exists, then stages
    the bytes through a same-directory temp file and ``os.replace``s it
    into place — a crash mid-write leaves either the old file or no
    file, never a truncated container.
    """
    final = path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")
    tmp = final.with_name(f".{final.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return final


@dataclass
class IOTimer:
    """Accumulates wall-clock I/O time (the paper's clock_gettime analog)."""

    write_seconds: float = 0.0
    read_seconds: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0

    def record_write(self, seconds: float, nbytes: int) -> None:
        """Log one write."""
        self.write_seconds += seconds
        self.bytes_written += nbytes

    def record_read(self, seconds: float, nbytes: int) -> None:
        """Log one read."""
        self.read_seconds += seconds
        self.bytes_read += nbytes


def write_snapshot(
    path: str | Path,
    grid: PhaseSpaceGrid,
    f: np.ndarray,
    particles: ParticleSet | None = None,
    a: float = 1.0,
    timer: IOTimer | None = None,
    extra: dict | None = None,
) -> Path:
    """Write a moment-level snapshot (density, velocity, dispersion).

    The 6-D f is reduced to its observable moments; particles (if any)
    are stored in full.  Returns the path actually written (``.npz``
    appended when the caller's name lacks it); the write is atomic.
    """
    path = Path(path)
    t0 = time.perf_counter()
    rho = moments.density(f, grid)
    vel = moments.mean_velocity(f, grid, rho)
    sigma = moments.velocity_dispersion(f, grid, rho)
    payload = {
        "density": rho.astype(np.float32),
        "velocity": vel.astype(np.float32),
        "dispersion": sigma.astype(np.float32),
    }
    if particles is not None:
        payload["positions"] = particles.positions
        payload["velocities"] = particles.velocities
        payload["masses"] = particles.masses
    header = {
        "version": FORMAT_VERSION,
        "kind": "snapshot",
        "a": a,
        "nx": grid.nx,
        "nu": grid.nu,
        "box_size": grid.box_size,
        "v_max": grid.v_max,
        "has_particles": particles is not None,
        "extra": extra or {},
    }
    if CHECKSUMS_ENABLED:
        header["checksums"] = _array_checksums(payload)
    payload["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    path = _atomic_savez(path, payload)
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_write(elapsed, path.stat().st_size)
    return path


def read_snapshot(path: str | Path, timer: IOTimer | None = None) -> dict:
    """Read a snapshot; returns header fields plus the stored arrays.

    Accepts either the monolithic ``.npz`` form or a chunked snapshot
    directory / its ``manifest.json`` (see :func:`write_snapshot_chunked`)
    — the returned dict has the same shape for both.
    """
    path = Path(path)
    if path.is_dir() or path.name == MANIFEST_NAME:
        return _read_snapshot_chunked(path, timer=timer)
    t0 = time.perf_counter()
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("kind") != "snapshot":
            raise ValueError(f"{path} is not a snapshot (kind={header.get('kind')})")
        out = {"header": header}
        for key in data.files:
            if key != "header":
                out[key] = data[key]
        _verify_checksums(path, header, out)
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_read(elapsed, path.stat().st_size)
    return out


def write_checkpoint(
    path: str | Path,
    grid: PhaseSpaceGrid,
    f: np.ndarray,
    particles: ParticleSet | None = None,
    a: float = 1.0,
    step: int = 0,
    sim_time: float = 0.0,
    extra: dict | None = None,
    timer: IOTimer | None = None,
) -> Path:
    """Write a restart checkpoint carrying the full f.

    ``sim_time`` is the driver's accumulated proper time (the plasma and
    static-gravity clocks); ``extra`` is a JSON-serializable dict for
    whatever the caller needs to resume exactly (scenario name, schedule
    position, ...).  Returns the path actually written (``.npz`` appended
    when missing); the write is atomic, so an interrupted checkpoint
    never corrupts the restart chain.
    """
    path = Path(path)
    t0 = time.perf_counter()
    payload = {"f": f}
    if particles is not None:
        payload["positions"] = particles.positions
        payload["velocities"] = particles.velocities
        payload["masses"] = particles.masses
    header = {
        "version": FORMAT_VERSION,
        "kind": "checkpoint",
        "a": a,
        "step": step,
        "time": sim_time,
        "extra": extra or {},
        "nx": grid.nx,
        "nu": grid.nu,
        "box_size": grid.box_size,
        "v_max": grid.v_max,
        "dtype": grid.dtype.name,
        "has_particles": particles is not None,
    }
    if CHECKSUMS_ENABLED:
        header["checksums"] = _array_checksums(payload)
    payload["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    path = _atomic_savez(path, payload)
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_write(elapsed, path.stat().st_size)
    return path


def read_checkpoint(
    path: str | Path, timer: IOTimer | None = None
) -> tuple[PhaseSpaceGrid, np.ndarray, ParticleSet | None, dict]:
    """Read a checkpoint back into (grid, f, particles, header).

    Headers older than the current :data:`FORMAT_VERSION` are upgraded in
    place: v1 files gain ``time = 0.0`` and ``extra = {}``; v2 files
    simply have no ``checksums`` to verify.  v3 arrays are checked
    against their stored CRC32 and raise :class:`SnapshotIntegrityError`
    on mismatch — a silent bit-flip must not become a resumed state.
    """
    path = Path(path)
    t0 = time.perf_counter()
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("kind") != "checkpoint":
            raise ValueError(f"{path} is not a checkpoint")
        header.setdefault("time", 0.0)
        header.setdefault("extra", {})
        grid = PhaseSpaceGrid(
            nx=tuple(header["nx"]),
            nu=tuple(header["nu"]),
            box_size=header["box_size"],
            v_max=header["v_max"],
            dtype=np.dtype(header["dtype"]),
        )
        arrays = {"f": data["f"]}
        particles = None
        if header["has_particles"]:
            arrays["positions"] = data["positions"]
            arrays["velocities"] = data["velocities"]
            arrays["masses"] = data["masses"]
            particles = ParticleSet(
                arrays["positions"],
                arrays["velocities"],
                arrays["masses"],
                header["box_size"],
            )
        _verify_checksums(path, header, arrays)
        f = arrays["f"]
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_read(elapsed, path.stat().st_size)
    if f.shape != grid.shape:
        raise ValueError("checkpoint f shape does not match its header")
    return grid, f, particles, header


# ----------------------------------------------------------------------
# chunked snapshots: per-slab .npy chunks + a JSON manifest
# ----------------------------------------------------------------------

#: Manifest filename inside a chunked snapshot directory.
MANIFEST_NAME = "manifest.json"

#: Default number of slabs each field is split into (clamped to the
#: field's extent along its chunk axis).
DEFAULT_CHUNKS = 8

#: Fields this small are not worth splitting: each chunk pays an
#: open + fsync + rename, which for sub-megabyte slabs costs far more
#: than slab-granular reads ever save.  The writer shrinks the chunk
#: count so every chunk is at least this big (set 0 to force splitting).
MIN_CHUNK_BYTES = 1 << 20


def _atomic_save_npy(path: Path, arr: np.ndarray) -> Path:
    """Write one ``.npy`` chunk atomically; return the real final path."""
    final = path if path.name.endswith(".npy") else path.with_name(path.name + ".npy")
    tmp = final.with_name(f".{final.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.save(fh, arr)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return final


def _chunk_axis(name: str, shape: tuple[int, ...], grid: PhaseSpaceGrid) -> int:
    """Which axis of a field is the spatial slab axis.

    Scalar moment fields are ``grid.nx`` (slab along axis 0); vector
    fields carry a leading component axis (slab along axis 1); particle
    arrays are per-row (axis 0).
    """
    if len(shape) == grid.dim + 1 and shape[1:] == grid.nx:
        return 1
    return 0


def write_snapshot_chunked(
    path: str | Path,
    grid: PhaseSpaceGrid,
    f: np.ndarray | None = None,
    particles: ParticleSet | None = None,
    a: float = 1.0,
    timer: IOTimer | None = None,
    extra: dict | None = None,
    fields: dict[str, np.ndarray] | None = None,
    n_chunks: int = DEFAULT_CHUNKS,
    min_chunk_bytes: int = MIN_CHUNK_BYTES,
) -> Path:
    """Write a moment-level snapshot as per-slab chunks under a directory.

    Same observable content as :func:`write_snapshot` (``fields`` may
    override/extend the derived moment set — the serving pipeline passes
    precomputed moments plus the CDM density mesh), but each field is
    split into ``n_chunks`` slabs along its spatial axis, one ``.npy``
    per slab (small fields collapse to fewer slabs so no chunk falls
    below ``min_chunk_bytes``), described by ``manifest.json``:

    * ``header`` — the usual snapshot header (version, a, geometry,
      ``extra``), plus ``"chunked": true``;
    * ``fields`` — per field: dtype, shape, chunk axis, and the chunk
      table ``[{file, start, stop, crc32}]`` (CRCs omitted when
      ``REPRO_SNAPSHOT_CRC=0``).

    Chunks are written first and the manifest last (all writes atomic),
    so a torn write leaves a directory without a manifest — invalid,
    never silently partial.  Returns the manifest path.
    """
    out_dir = Path(path)
    t0 = time.perf_counter()
    if fields is None:
        if f is None:
            raise ValueError("write_snapshot_chunked needs f or fields")
        rho = moments.density(f, grid)
        fields = {
            "density": rho.astype(np.float32),
            "velocity": moments.mean_velocity(f, grid, rho).astype(np.float32),
            "dispersion": moments.velocity_dispersion(f, grid, rho).astype(np.float32),
        }
    else:
        fields = dict(fields)
    if particles is not None:
        fields["positions"] = particles.positions
        fields["velocities"] = particles.velocities
        fields["masses"] = particles.masses
    out_dir.mkdir(parents=True, exist_ok=True)
    total_bytes = 0
    field_table: dict[str, dict] = {}
    for name, arr in fields.items():
        arr = np.asarray(arr)
        axis = _chunk_axis(name, arr.shape, grid)
        n = max(1, min(n_chunks, arr.shape[axis]))
        if min_chunk_bytes > 0:
            n = max(1, min(n, int(arr.nbytes // min_chunk_bytes)))
        bounds = np.linspace(0, arr.shape[axis], n + 1).astype(int)
        chunks = []
        for i, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:])):
            sl = [slice(None)] * arr.ndim
            sl[axis] = slice(int(start), int(stop))
            chunk = np.ascontiguousarray(arr[tuple(sl)])
            chunk_path = _atomic_save_npy(out_dir / f"{name}.{i:03d}.npy", chunk)
            total_bytes += chunk_path.stat().st_size
            entry = {
                "file": chunk_path.name,
                "start": int(start),
                "stop": int(stop),
            }
            if CHECKSUMS_ENABLED:
                entry["crc32"] = _crc32(chunk)
            chunks.append(entry)
        field_table[name] = {
            "dtype": arr.dtype.name,
            "shape": list(arr.shape),
            "axis": axis,
            "chunks": chunks,
        }
    manifest = {
        "header": {
            "version": FORMAT_VERSION,
            "kind": "snapshot",
            "chunked": True,
            "a": a,
            "nx": grid.nx,
            "nu": grid.nu,
            "box_size": grid.box_size,
            "v_max": grid.v_max,
            "has_particles": particles is not None,
            "extra": extra or {},
        },
        "fields": field_table,
    }
    manifest_path = out_dir / MANIFEST_NAME
    tmp = manifest_path.with_name(f".{manifest_path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, manifest_path)
    total_bytes += manifest_path.stat().st_size
    if timer is not None:
        timer.record_write(time.perf_counter() - t0, total_bytes)
    return manifest_path


def _manifest_dir(path: Path) -> Path:
    """The snapshot directory for a dir / manifest.json path."""
    return path.parent if path.name == MANIFEST_NAME else path


def snapshot_manifest(path: str | Path) -> dict:
    """Load a chunked snapshot's manifest (dir or manifest.json path)."""
    out_dir = _manifest_dir(Path(path))
    manifest_path = out_dir / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{out_dir} is not a chunked snapshot (no {MANIFEST_NAME})"
        )
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("header", {}).get("kind") != "snapshot":
        raise ValueError(f"{manifest_path} is not a snapshot manifest")
    return manifest


def _load_chunk(out_dir: Path, name: str, spec: dict, entry: dict) -> np.ndarray:
    """Read and (when enabled) CRC-verify one chunk file."""
    chunk_path = out_dir / entry["file"]
    chunk = np.load(chunk_path)
    if CHECKSUMS_ENABLED and "crc32" in entry:
        actual = _crc32(chunk)
        if actual != int(entry["crc32"]):
            raise SnapshotIntegrityError(
                f"{chunk_path}: chunk of field {name!r} fails its checksum "
                f"(stored crc32={int(entry['crc32']):#010x}, read "
                f"{actual:#010x}) — the file was corrupted after it was "
                "written"
            )
    expected_dtype = np.dtype(spec["dtype"])
    if chunk.dtype != expected_dtype:
        raise SnapshotIntegrityError(
            f"{chunk_path}: chunk dtype {chunk.dtype} does not match the "
            f"manifest ({expected_dtype})"
        )
    return chunk


def read_snapshot_field(
    path: str | Path, field: str, timer: IOTimer | None = None
) -> np.ndarray:
    """Assemble one full field of a chunked snapshot from its chunks."""
    out_dir = _manifest_dir(Path(path))
    t0 = time.perf_counter()
    manifest = snapshot_manifest(out_dir)
    try:
        spec = manifest["fields"][field]
    except KeyError:
        raise KeyError(
            f"{out_dir} has no field {field!r}; available: "
            f"{sorted(manifest['fields'])}"
        ) from None
    chunks = [
        _load_chunk(out_dir, field, spec, entry) for entry in spec["chunks"]
    ]
    arr = np.concatenate(chunks, axis=spec["axis"]) if len(chunks) > 1 else chunks[0]
    if arr.shape != tuple(spec["shape"]):
        raise SnapshotIntegrityError(
            f"{out_dir}: field {field!r} reassembles to {arr.shape}, "
            f"manifest says {tuple(spec['shape'])}"
        )
    if timer is not None:
        timer.record_read(time.perf_counter() - t0, arr.nbytes)
    return arr


def read_snapshot_slab(
    path: str | Path, field: str, chunk: int, timer: IOTimer | None = None
) -> tuple[np.ndarray, tuple[int, int]]:
    """Fetch a single slab of one field without touching its siblings.

    Returns ``(slab, (start, stop))`` — the slab's index range along the
    field's chunk axis.  This is the read path the manifest exists for:
    one small ``.npy`` instead of the whole container.
    """
    out_dir = _manifest_dir(Path(path))
    t0 = time.perf_counter()
    manifest = snapshot_manifest(out_dir)
    spec = manifest["fields"][field]
    entries = spec["chunks"]
    if not -len(entries) <= chunk < len(entries):
        raise IndexError(
            f"field {field!r} has {len(entries)} chunks, asked for {chunk}"
        )
    entry = entries[chunk]
    slab = _load_chunk(out_dir, field, spec, entry)
    if timer is not None:
        timer.record_read(time.perf_counter() - t0, slab.nbytes)
    return slab, (int(entry["start"]), int(entry["stop"]))


def _read_snapshot_chunked(path: Path, timer: IOTimer | None = None) -> dict:
    """The chunked branch of :func:`read_snapshot`: assemble everything."""
    out_dir = _manifest_dir(path)
    t0 = time.perf_counter()
    manifest = snapshot_manifest(out_dir)
    out = {"header": manifest["header"]}
    nbytes = 0
    for name in manifest["fields"]:
        out[name] = read_snapshot_field(out_dir, name)
        nbytes += out[name].nbytes
    if timer is not None:
        timer.record_read(time.perf_counter() - t0, nbytes)
    return out
