"""Snapshot and checkpoint I/O with timing.

The paper reports end-to-end times *including I/O* (733-782 s of the
full-system runs), so I/O is a first-class, timed subsystem.  Snapshots
follow the production convention: particles and *moment* fields are
dumped (never the 6-D f itself — see the machine model's I/O notes);
checkpoints additionally carry the full distribution function so a run
can resume bit-exactly.

Format: a single ``.npz`` container with a JSON-encoded header —
self-describing, portable, append-free.

Writes are **atomic**: the container is staged to a temporary file in
the destination directory and moved into place with ``os.replace``, so
an interrupted write can never leave a truncated snapshot — and never
corrupt an existing checkpoint being overwritten (the previous file
survives intact until the replace).  Writers also return the path that
actually exists on disk: ``np.savez`` silently appends ``.npz`` to
suffix-less names, which used to make the returned path (and
``path.stat()`` with a timer attached) point at a nonexistent file.

Integrity: version-3 headers carry a per-array CRC32 checksum computed
over the exact bytes stored, and readers verify every array against it
(:class:`SnapshotIntegrityError` on mismatch) — so a bit-flip on disk is
*detected* rather than silently resumed from.  Corrupt containers can be
moved aside with :func:`quarantine` (rename to ``*.corrupt``), which
takes them out of the restart chain while keeping them for post-mortem.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.mesh import PhaseSpaceGrid
from ..core import moments
from ..nbody.particles import ParticleSet

#: Format version written into every header.
#:
#: * v1 — checkpoints carried ``a`` and ``step`` only; enough for the
#:   hybrid driver (whose clock *is* the scale factor) but lossy for the
#:   plasma/static drivers, which accumulate a proper ``time``.
#: * v2 — adds ``time`` (the driver's accumulated proper time, exact
#:   bits) and a free-form ``extra`` dict (scenario name, schedule
#:   position, anything the orchestration layer needs to resume).
#:   Readers backfill ``time=0.0`` / ``extra={}`` for v1 files, so old
#:   checkpoints stay loadable.
#: * v3 — adds ``checksums``: a per-array CRC32 (of the stored bytes)
#:   that readers verify on load.  v2/v1 files (no ``checksums`` key)
#:   are still accepted and simply skip the verification.
FORMAT_VERSION = 3

#: Global write/verify switch: ``REPRO_SNAPSHOT_CRC=0`` disables both
#: computing checksums on write and verifying them on read (an escape
#: hatch for benchmarking the tax and for pathological I/O systems).
CHECKSUMS_ENABLED = os.environ.get("REPRO_SNAPSHOT_CRC", "1") != "0"


class SnapshotIntegrityError(ValueError):
    """A stored array's bytes do not match its header checksum."""


def _crc32(arr: np.ndarray) -> int:
    """CRC32 of an array's C-order bytes (what lands in the container)."""
    return zlib.crc32(np.ascontiguousarray(arr)) & 0xFFFFFFFF


def _array_checksums(payload: dict) -> dict[str, int]:
    """Per-array CRC32 map over everything but the header itself."""
    return {
        name: _crc32(arr)
        for name, arr in payload.items()
        if name != "header"
    }


def _verify_checksums(path: Path, header: dict, arrays: dict) -> None:
    """Check loaded arrays against the v3 header checksums.

    Older headers (no ``checksums`` key) verify trivially.  ``arrays``
    holds the already-deserialized arrays — the exact bytes a resume
    would adopt — so verification costs one CRC pass, not a second read.
    """
    if not CHECKSUMS_ENABLED:
        return
    checksums = header.get("checksums")
    if not checksums:
        return
    for name, expected in checksums.items():
        if name not in arrays:
            raise SnapshotIntegrityError(
                f"{path}: array {name!r} listed in header checksums is missing"
            )
        actual = _crc32(arrays[name])
        if actual != int(expected):
            raise SnapshotIntegrityError(
                f"{path}: array {name!r} fails its checksum "
                f"(stored crc32={int(expected):#010x}, read {actual:#010x}) — "
                "the file was corrupted after it was written"
            )


#: Suffix appended to quarantined (checksum- or format-corrupt) files.
QUARANTINE_SUFFIX = ".corrupt"


def quarantine(path: str | Path) -> Path:
    """Move a corrupt container out of the restart chain.

    Renames ``ck_00000010.npz`` to ``ck_00000010.npz.corrupt`` — the
    checkpoint globs no longer match it, so resume scans skip it without
    re-reading, while the bytes stay on disk for post-mortem.  Returns
    the new path.  Idempotent-ish: an existing quarantine target is
    overwritten (same corrupt file, re-detected).
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    os.replace(path, target)
    return target


def _atomic_savez(path: Path, payload: dict) -> Path:
    """Write an ``.npz`` container atomically; return the real final path.

    Mirrors ``np.savez``'s suffix behavior explicitly (append ``.npz``
    when missing) so the caller gets the path that exists, then stages
    the bytes through a same-directory temp file and ``os.replace``s it
    into place — a crash mid-write leaves either the old file or no
    file, never a truncated container.
    """
    final = path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")
    tmp = final.with_name(f".{final.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return final


@dataclass
class IOTimer:
    """Accumulates wall-clock I/O time (the paper's clock_gettime analog)."""

    write_seconds: float = 0.0
    read_seconds: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0

    def record_write(self, seconds: float, nbytes: int) -> None:
        """Log one write."""
        self.write_seconds += seconds
        self.bytes_written += nbytes

    def record_read(self, seconds: float, nbytes: int) -> None:
        """Log one read."""
        self.read_seconds += seconds
        self.bytes_read += nbytes


def write_snapshot(
    path: str | Path,
    grid: PhaseSpaceGrid,
    f: np.ndarray,
    particles: ParticleSet | None = None,
    a: float = 1.0,
    timer: IOTimer | None = None,
    extra: dict | None = None,
) -> Path:
    """Write a moment-level snapshot (density, velocity, dispersion).

    The 6-D f is reduced to its observable moments; particles (if any)
    are stored in full.  Returns the path actually written (``.npz``
    appended when the caller's name lacks it); the write is atomic.
    """
    path = Path(path)
    t0 = time.perf_counter()
    rho = moments.density(f, grid)
    vel = moments.mean_velocity(f, grid, rho)
    sigma = moments.velocity_dispersion(f, grid, rho)
    payload = {
        "density": rho.astype(np.float32),
        "velocity": vel.astype(np.float32),
        "dispersion": sigma.astype(np.float32),
    }
    if particles is not None:
        payload["positions"] = particles.positions
        payload["velocities"] = particles.velocities
        payload["masses"] = particles.masses
    header = {
        "version": FORMAT_VERSION,
        "kind": "snapshot",
        "a": a,
        "nx": grid.nx,
        "nu": grid.nu,
        "box_size": grid.box_size,
        "v_max": grid.v_max,
        "has_particles": particles is not None,
        "extra": extra or {},
    }
    if CHECKSUMS_ENABLED:
        header["checksums"] = _array_checksums(payload)
    payload["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    path = _atomic_savez(path, payload)
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_write(elapsed, path.stat().st_size)
    return path


def read_snapshot(path: str | Path, timer: IOTimer | None = None) -> dict:
    """Read a snapshot; returns header fields plus the stored arrays."""
    path = Path(path)
    t0 = time.perf_counter()
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("kind") != "snapshot":
            raise ValueError(f"{path} is not a snapshot (kind={header.get('kind')})")
        out = {"header": header}
        for key in data.files:
            if key != "header":
                out[key] = data[key]
        _verify_checksums(path, header, out)
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_read(elapsed, path.stat().st_size)
    return out


def write_checkpoint(
    path: str | Path,
    grid: PhaseSpaceGrid,
    f: np.ndarray,
    particles: ParticleSet | None = None,
    a: float = 1.0,
    step: int = 0,
    sim_time: float = 0.0,
    extra: dict | None = None,
    timer: IOTimer | None = None,
) -> Path:
    """Write a restart checkpoint carrying the full f.

    ``sim_time`` is the driver's accumulated proper time (the plasma and
    static-gravity clocks); ``extra`` is a JSON-serializable dict for
    whatever the caller needs to resume exactly (scenario name, schedule
    position, ...).  Returns the path actually written (``.npz`` appended
    when missing); the write is atomic, so an interrupted checkpoint
    never corrupts the restart chain.
    """
    path = Path(path)
    t0 = time.perf_counter()
    payload = {"f": f}
    if particles is not None:
        payload["positions"] = particles.positions
        payload["velocities"] = particles.velocities
        payload["masses"] = particles.masses
    header = {
        "version": FORMAT_VERSION,
        "kind": "checkpoint",
        "a": a,
        "step": step,
        "time": sim_time,
        "extra": extra or {},
        "nx": grid.nx,
        "nu": grid.nu,
        "box_size": grid.box_size,
        "v_max": grid.v_max,
        "dtype": grid.dtype.name,
        "has_particles": particles is not None,
    }
    if CHECKSUMS_ENABLED:
        header["checksums"] = _array_checksums(payload)
    payload["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    path = _atomic_savez(path, payload)
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_write(elapsed, path.stat().st_size)
    return path


def read_checkpoint(
    path: str | Path, timer: IOTimer | None = None
) -> tuple[PhaseSpaceGrid, np.ndarray, ParticleSet | None, dict]:
    """Read a checkpoint back into (grid, f, particles, header).

    Headers older than the current :data:`FORMAT_VERSION` are upgraded in
    place: v1 files gain ``time = 0.0`` and ``extra = {}``; v2 files
    simply have no ``checksums`` to verify.  v3 arrays are checked
    against their stored CRC32 and raise :class:`SnapshotIntegrityError`
    on mismatch — a silent bit-flip must not become a resumed state.
    """
    path = Path(path)
    t0 = time.perf_counter()
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("kind") != "checkpoint":
            raise ValueError(f"{path} is not a checkpoint")
        header.setdefault("time", 0.0)
        header.setdefault("extra", {})
        grid = PhaseSpaceGrid(
            nx=tuple(header["nx"]),
            nu=tuple(header["nu"]),
            box_size=header["box_size"],
            v_max=header["v_max"],
            dtype=np.dtype(header["dtype"]),
        )
        arrays = {"f": data["f"]}
        particles = None
        if header["has_particles"]:
            arrays["positions"] = data["positions"]
            arrays["velocities"] = data["velocities"]
            arrays["masses"] = data["masses"]
            particles = ParticleSet(
                arrays["positions"],
                arrays["velocities"],
                arrays["masses"],
                header["box_size"],
            )
        _verify_checksums(path, header, arrays)
        f = arrays["f"]
    elapsed = time.perf_counter() - t0
    if timer is not None:
        timer.record_read(elapsed, path.stat().st_size)
    if f.shape != grid.shape:
        raise ValueError("checkpoint f shape does not match its header")
    return grid, f, particles, header
