"""Timed snapshot/checkpoint I/O."""

from .snapshot import (
    FORMAT_VERSION,
    IOTimer,
    read_checkpoint,
    read_snapshot,
    write_checkpoint,
    write_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "IOTimer",
    "read_checkpoint",
    "read_snapshot",
    "write_checkpoint",
    "write_snapshot",
]
