"""Two-dimensionally decomposed (pencil) parallel 3-D FFT.

The paper's PM part uses the Fujitsu SSL II/MPI parallel FFT, which
"supports the two-dimensionally decomposed data layout": a 3-D transform
over an ``n_x x n_y`` process grid proceeds as

    local FFT along z  ->  alltoall transpose (z <-> y within columns)
    local FFT along y  ->  alltoall transpose (y <-> x within rows)
    local FFT along x

so its parallelism saturates at ``n_x * n_y`` processes — adding ranks
along the third decomposition axis does not speed it up.  That saturation
is exactly why the PM part's weak/strong scaling collapses in the paper's
Tables 3-4 while everything else scales.  This module implements the
pencil pipeline on the virtual runtime (numerically exact, alltoalls
logged), and the machine model replays its communication pattern at scale.

Layout convention: the global complex array has shape (nx, ny, nz); rank
(px, py) of a (p1, p2) grid owns the block ``x in slab(px), y in
slab(py), all z`` in the starting layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vmpi import CollectiveRecord, VirtualComm


@dataclass(frozen=True)
class PencilGrid:
    """Geometry of the 2-D-decomposed FFT."""

    n_mesh: tuple[int, int, int]
    p1: int
    p2: int

    def __post_init__(self) -> None:
        nx, ny, nz = self.n_mesh
        if nx % self.p1 or ny % self.p2 or ny % self.p1 or nz % self.p2:
            raise ValueError(
                "mesh extents must divide evenly by the process grid "
                "(both in the start and transposed layouts)"
            )
        if self.p1 < 1 or self.p2 < 1:
            raise ValueError("process grid extents must be >= 1")

    @property
    def size(self) -> int:
        """Number of ranks participating in the FFT."""
        return self.p1 * self.p2

    def rank_of(self, px: int, py: int) -> int:
        """Rank index of grid coordinates."""
        return px * self.p2 + py

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of a rank."""
        return divmod(rank, self.p2)

    def scatter(self, global_array: np.ndarray) -> list[np.ndarray]:
        """Split the global (nx, ny, nz) array into start-layout pencils."""
        nx, ny, nz = self.n_mesh
        if global_array.shape != self.n_mesh:
            raise ValueError("global array shape mismatch")
        bx, by = nx // self.p1, ny // self.p2
        return [
            np.ascontiguousarray(
                global_array[px * bx : (px + 1) * bx, py * by : (py + 1) * by, :]
            )
            for px in range(self.p1)
            for py in range(self.p2)
        ]

    def gather(self, pencils: list[np.ndarray]) -> np.ndarray:
        """Reassemble start-layout pencils into the global array."""
        nx, ny, nz = self.n_mesh
        bx, by = nx // self.p1, ny // self.p2
        out = np.empty(self.n_mesh, dtype=pencils[0].dtype)
        for rank, blk in enumerate(pencils):
            px, py = self.coords_of(rank)
            out[px * bx : (px + 1) * bx, py * by : (py + 1) * by, :] = blk
        return out


def _transpose_within_groups(
    pencils: list[np.ndarray],
    grid: PencilGrid,
    comm: VirtualComm,
    group_axis: int,
    local_axes: tuple[int, int],
    tag: str,
) -> list[np.ndarray]:
    """Alltoall transpose exchanging data among one process-grid axis.

    ``group_axis`` 0 redistributes along p1 (rows share py), 1 along p2.
    ``local_axes`` = (axis_split_now, axis_gathered_now): each rank splits
    its block along ``axis_split_now`` into group-size chunks and receives
    the matching chunks of its group peers concatenated along
    ``axis_gathered_now``.
    """
    group_size = grid.p1 if group_axis == 0 else grid.p2
    split_ax, gather_ax = local_axes
    new = [None] * grid.size
    per_rank_bytes = 0
    n_msgs = 0
    for fixed in range(grid.p2 if group_axis == 0 else grid.p1):
        # collect the ranks of this group
        if group_axis == 0:
            ranks = [grid.rank_of(g, fixed) for g in range(group_size)]
        else:
            ranks = [grid.rank_of(fixed, g) for g in range(group_size)]
        chunks = [np.array_split(pencils[r], group_size, axis=split_ax) for r in ranks]
        for gi, r in enumerate(ranks):
            parts = [chunks[gj][gi] for gj in range(group_size)]
            new[r] = np.ascontiguousarray(np.concatenate(parts, axis=gather_ax))
            for gj in range(group_size):
                if gj != gi:
                    per_rank_bytes += chunks[gj][gi].nbytes
                    n_msgs += 1
    comm.log.collectives.append(
        CollectiveRecord(
            "alltoall", group_size, per_rank_bytes // max(grid.size, 1), tag
        )
    )
    return new  # type: ignore[return-value]


def pencil_fft3d(
    pencils: list[np.ndarray], grid: PencilGrid, comm: VirtualComm, inverse: bool = False
) -> list[np.ndarray]:
    """Distributed 3-D complex FFT over start-layout pencils.

    Returns pencils in the *same* start layout (two extra transposes bring
    the data home, as SSL II does).  Numerically identical to
    ``np.fft.fftn`` on the gathered array.
    """
    fft = np.fft.ifft if inverse else np.fft.fft
    work = [np.asarray(p, dtype=np.complex128) for p in pencils]

    # z is fully local in the start layout
    work = [fft(p, axis=2) for p in work]
    # transpose y <-> z among p2 (each rank splits z, gathers y)
    work = _transpose_within_groups(work, grid, comm, 1, (2, 1), "fft-yz")
    work = [fft(p, axis=1) for p in work]
    # transpose x <-> y ... x is split over p1; exchange along p1
    work = _transpose_within_groups(work, grid, comm, 0, (1, 0), "fft-xy")
    work = [fft(p, axis=0) for p in work]
    # bring home: inverse transposes
    work = _transpose_within_groups(work, grid, comm, 0, (0, 1), "fft-xy-back")
    work = _transpose_within_groups(work, grid, comm, 1, (1, 2), "fft-zy-back")
    return work
