"""Real multi-process execution of the decomposed Vlasov sweep.

The virtual runtime (:mod:`repro.parallel.vmpi`) proves the decomposed
algorithm is exact; this module actually runs it across OS processes with
``multiprocessing`` — the closest single-node analog of the paper's MPI
execution.  Each worker receives its spatial block *with ghost halo* (the
scatter plays the role of the ghost exchange) and returns the advected
interior; the parent reassembles.

This is demo/validation machinery, not a performance path: NumPy releases
the GIL anyway, and serializing blocks through pipes costs more than the
sweep at laptop scales.  The tests assert bit-equality with the serial
sweep and a benchmark records the (un)scaling honestly.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from ..core.advection import advect
from .exchange import required_ghost


def _worker(args):
    """Advect one haloed block; return the interior."""
    block, shift, axis, scheme, ghost, interior_len = args
    out = advect(block, shift, axis, scheme=scheme, bc="periodic")
    take = [slice(None)] * out.ndim
    take[axis] = slice(ghost, ghost + interior_len)
    return np.ascontiguousarray(out[tuple(take)])


def multiprocess_spatial_advect(
    f: np.ndarray,
    shift,
    axis: int,
    scheme: str = "slmpp5",
    n_workers: int = 2,
    cfl_max: float = 1.0,
) -> np.ndarray:
    """One spatial advection executed across ``n_workers`` OS processes.

    The global array is split along ``axis`` into equal blocks, each
    extended by the required ghost halo (periodic), advected in a worker,
    and reassembled.  Identical to ``advect(f, shift, axis, ...)`` as
    long as |shift| <= cfl_max.
    """
    n = f.shape[axis]
    if n % n_workers:
        raise ValueError(f"axis length {n} not divisible by {n_workers} workers")
    sh = np.asarray(shift)
    if float(np.max(np.abs(sh))) > cfl_max + 1e-12:
        raise ValueError("shift exceeds cfl_max")
    ghost = required_ghost(scheme, cfl_max)
    block_len = n // n_workers
    if ghost > block_len:
        raise ValueError("ghost halo exceeds block length; use fewer workers")

    jobs = []
    for w in range(n_workers):
        lo = w * block_len
        idx = (np.arange(lo - ghost, lo + block_len + ghost)) % n
        block = np.take(f, idx, axis=axis)
        jobs.append((block, sh, axis, scheme, ghost, block_len))

    if n_workers == 1:
        parts = [_worker(jobs[0])]
    else:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        with ctx.Pool(processes=n_workers) as pool:
            parts = pool.map(_worker, jobs)
    return np.concatenate(parts, axis=axis)
