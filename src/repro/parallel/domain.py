"""Real-transport 3-D domain decomposition: the ``DomainEngine``.

This is the production promotion of the virtual layout in
:mod:`repro.parallel.vmpi`: the spatial grid is partitioned into 3-D
blocks (paper §5.1.3 — velocity space is never split), each block is
pinned to a **persistent worker process** that holds its subdomain in
``multiprocessing.shared_memory`` across *all* steps, and halo exchange
is a direct shared-memory read of the neighbors' ghost slabs, overlapped
with the interior sweep (see :mod:`repro.parallel.workers`).  Unlike
:class:`repro.perf.pencil.PencilEngine`, nothing is scattered or
gathered per sweep: the distribution function lives in the workers'
segments for the lifetime of the run, and the parent only gathers when
someone actually asks for the full array (checkpoints, diagnostics) —
the ``gather_count`` counter makes that observable and the benchmarks
assert it stays zero across steps.

Bitwise identity with the serial solver is a hard invariant, inherited
from three empirically pinned facts (asserted by the test suite):

* a block sweep (padded or overlapped-stitch) equals the serial sweep
  exactly while every shift stays **below one cell** — the engine checks
  each spatial sweep's max shift and falls back to a gather → host sweep
  → scatter for the rare sweep at CFL >= 1 (``domain_cfl_fallback``);
  velocity kicks never cross block boundaries and have no cap;
* the staged 2-D pencil forward FFT equals the fused ``rfftn`` and the
  staged inverse equals :meth:`SpectralBackend.irfftn`'s separable plan
  (which is why that method uses the separable order); an init-time
  probe verifies both on the actual staging buffers and otherwise keeps
  the field solve on the parent (``domain_fft_fallback``);
* per-cell velocity moments are block-local (§5.1.3), so the density
  mesh assembled from worker slabs is the serial one bit for bit.

Supervision follows the PR 4 pattern of ``PencilEngine``: a dead or
wedged worker tears the fleet down and retries on fresh processes (the
parent-owned segments survive, so the current-role buffers are the
recovery state — SIGKILL loses no data); an exhausted retry budget
degrades permanently down the ladder **domain → pencil(threads) →
serial**, finishing the step host-side from the gathered state.  All
segments register with the :mod:`repro.perf.pencil` atexit leak sweep.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING

import numpy as np

from ..core.advection import SCHEMES, advect
from ..core.mesh import PhaseSpaceGrid
from ..core.vlasov import _AXIS_NAMES, VlasovSolver
from ..perf.arena import ScratchArena
from ..perf.fft import SpectralBackend
from ..perf.pencil import (
    PencilEngine,
    _available_cores,
    _emit,
    _register_segment,
    _release_segment,
)
from .decomposition import BlockDecomposition
from .exchange import required_ghost
from .vmpi import MessageRecord
from .workers import WorkerSpec, worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..diagnostics.timers import StepTimer

__all__ = ["DomainEngine", "DomainSolverAdapter", "DomainWorkerError"]

#: Spatial shifts must stay strictly below one cell for block sweeps to
#: be bitwise-identical to serial (integer part of the departure shift
#: crosses block seams otherwise).
_CFL_LIMIT = 1.0


class DomainWorkerError(RuntimeError):
    """A domain worker died, answered garbage, or timed out."""


def _auto_topology(nx: tuple[int, ...], n_workers: int) -> tuple[int, ...]:
    """Factor ``n_workers`` over the spatial axes, longest-first.

    Greedy: each prime factor of ``n_workers`` (largest first) goes to
    the axis with the most cells per current block — the same heuristic
    a human uses filling in Table 2's (n_x, n_y, n_z).
    """
    factors = []
    n = max(1, int(n_workers))
    p = 2
    while p * p <= n:
        while n % p == 0:
            factors.append(p)
            n //= p
        p += 1
    if n > 1:
        factors.append(n)
    topo = [1] * len(nx)
    for f in sorted(factors, reverse=True):
        ax = max(range(len(nx)), key=lambda d: nx[d] / topo[d])
        topo[ax] *= f
    return tuple(topo)


class _FaultPool:
    """Pool facade handed to ``FaultPlan.worker_fault``.

    The chaos harness calls ``pool.submit(_kill_self)`` /
    ``pool.submit(_occupy, seconds)``; here a submit becomes a
    fire-and-forget ``"call"`` command to one worker, round-robin.
    """

    def __init__(self, engine: "DomainEngine") -> None:
        self._engine = engine

    def submit(self, fn, *args) -> None:
        self._engine._inject_call(fn, args)


class DomainEngine:
    """Persistent-worker spatial domain decomposition (see module doc).

    Parameters
    ----------
    topology:
        Workers per spatial axis, e.g. ``(2, 2, 1)``; ``None`` factors
        ``n_workers`` automatically over the grid's axes at bind time.
    n_workers:
        Worker count when ``topology`` is ``None`` (default: available
        cores, capped at 4 — domain workers hold whole subdomains, they
        are not cheap threads).
    max_retries / backoff_base / task_timeout:
        Supervision budget, exactly as in
        :class:`repro.perf.pencil.PencilEngine`.
    overlap:
        Overlap halo assembly with the interior sweep (default); off
        forces the padded path everywhere (debugging aid).
    """

    #: duck-typing marker for the drivers (no import needed there)
    is_domain_engine = True

    def __init__(
        self,
        topology: tuple[int, ...] | None = None,
        n_workers: int | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        task_timeout: float | None = None,
        overlap: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.topology = tuple(int(p) for p in topology) if topology else None
        if self.topology is not None and any(p < 1 for p in self.topology):
            raise ValueError("topology entries must be >= 1")
        self.n_workers = n_workers
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.task_timeout = task_timeout
        self.overlap = bool(overlap)

        #: chaos-harness injection point, called as ``hook(self, pool)``
        #: before each sweep (see :class:`_FaultPool`).
        self.fault_hook = None
        self.timer: "StepTimer | None" = None

        # supervision / residency counters (observable by tests & bench)
        self.retries = 0
        self.degradations: list[str] = []
        self.degraded = False
        self.gather_count = 0
        self.scatter_count = 0
        self.cfl_fallbacks = 0
        self.halo_bytes = 0
        #: per-message halo accounting, same records the VirtualComm
        #: logs — the vmpi parity test diffs the two.
        self.halo_log: list[MessageRecord] = []

        # bound geometry (set by bind)
        self.grid: PhaseSpaceGrid | None = None
        self.scheme = ""
        self.velocity_bc = "zero"
        self.ghost = 0
        self.decomp: BlockDecomposition | None = None

        # runtime state
        self._cur = 0  # role index of the current-f segments
        self._host: np.ndarray | None = None
        self._host_dirty = False  # host has writes the segments lack
        self._host_stale = False  # segments have writes the host lacks
        self._host_tmp: np.ndarray | None = None
        self._segments: dict[str, object] = {}
        self._seg_names: list[tuple[str, str]] = []
        self._mesh_names: dict[str, str] = {}
        self._fft_names: tuple[str, str, str] | None = None
        self._fft_p: tuple[int, int] = (1, 1)
        self._fft_ok: bool | None = None
        self._procs: list = []
        self._conns: list = []
        self._victim = 0
        self._started = False
        self._arena = ScratchArena()
        self._plain: SpectralBackend | None = None
        self._frontend: "_DomainBackend | None" = None

    # -- binding --------------------------------------------------------

    @property
    def size(self) -> int:
        """Worker count (1 before bind when topology is automatic)."""
        if self.decomp is not None:
            return self.decomp.size
        if self.topology is not None:
            return int(np.prod(self.topology))
        return self.n_workers or 1

    def bind(
        self,
        grid: PhaseSpaceGrid,
        scheme: str,
        timer: "StepTimer | None" = None,
        velocity_bc: str = "zero",
    ) -> None:
        """Fix the engine to one grid geometry (idempotent per geometry).

        Rebinding to a different grid/scheme tears everything down first;
        rebinding to the same one only refreshes ``timer``.
        """
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}")
        if self.grid == grid and self.scheme == scheme \
                and self.velocity_bc == velocity_bc:
            self.timer = timer
            return
        if self.grid is not None:
            self.close()
        topo = self.topology
        if topo is None:
            workers = self.n_workers or min(_available_cores(), 4)
            topo = _auto_topology(grid.nx, workers)
        if len(topo) != grid.dim:
            raise ValueError(
                f"topology {topo} does not match grid dimension {grid.dim}"
            )
        ghost = required_ghost(scheme, 0.0)  # block sweeps run at CFL < 1
        decomp = BlockDecomposition(grid.nx, topo)
        for d in range(grid.dim):
            if topo[d] == 1:
                continue
            thinnest = grid.nx[d] // topo[d]
            if thinnest < ghost:
                raise ValueError(
                    f"axis {d}: {topo[d]} blocks over {grid.nx[d]} cells "
                    f"leaves {thinnest} < ghost width {ghost}; "
                    "use fewer workers or a larger mesh"
                )
        self.grid = grid
        self.scheme = scheme
        self.velocity_bc = velocity_bc
        self.timer = timer
        self.ghost = ghost
        self.decomp = decomp
        self.topology = topo
        self._fft_ok = None
        self._plain = SpectralBackend()

    def set_host(self, host: np.ndarray, dirty: bool = True) -> None:
        """Point the engine at the adapter's host mirror of f."""
        self._host = host
        if dirty:
            self._host_dirty = True
            self._host_stale = False

    # -- segments & workers ---------------------------------------------

    def _create_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        _register_segment(shm)
        self._segments[shm.name] = shm
        return shm

    def _ensure_segments(self) -> None:
        if self._seg_names:
            return
        grid, decomp = self.grid, self.decomp
        nu_cells = int(np.prod(grid.nu, dtype=np.int64))
        itemsize = np.dtype(grid.dtype).itemsize
        for r in range(decomp.size):
            cells = int(np.prod(decomp.local_shape(r), dtype=np.int64))
            nbytes = cells * nu_cells * itemsize
            self._seg_names.append(
                (self._create_segment(nbytes).name,
                 self._create_segment(nbytes).name)
            )
        nx_cells = int(np.prod(grid.nx, dtype=np.int64))
        self._mesh_names = {
            "rho": self._create_segment(nx_cells * 8).name,
            "accel": self._create_segment(grid.dim * nx_cells * 8).name,
        }
        if grid.dim == 3:
            n0, n1, n2 = grid.nx
            nzr = n2 // 2 + 1
            self._fft_names = (
                self._create_segment(n0 * n1 * n2 * 8).name,
                self._create_segment(n0 * n1 * nzr * 16).name,
                self._create_segment(n0 * n1 * nzr * 16).name,
            )
            p1 = self.topology[0]
            self._fft_p = (p1, decomp.size // p1)

    def _view(self, name: str, shape, dtype) -> np.ndarray:
        return np.ndarray(shape, dtype=dtype, buffer=self._segments[name].buf)

    def _block_view(self, rank: int, role: int) -> np.ndarray:
        shape = self.decomp.local_shape(rank) + self.grid.nu
        return self._view(self._seg_names[rank][role], shape, self.grid.dtype)

    def _worker_spec(self, rank: int) -> WorkerSpec:
        decomp, grid = self.decomp, self.grid
        fft = None
        if self._fft_names is not None:
            fft = {"names": self._fft_names,
                   "p1": self._fft_p[0], "p2": self._fft_p[1]}
        return WorkerSpec(
            rank=rank,
            size=decomp.size,
            grid=grid,
            scheme=self.scheme,
            ghost=self.ghost,
            seg_names=tuple(self._seg_names),
            block_shapes=tuple(
                decomp.local_shape(r) for r in range(decomp.size)
            ),
            own_bounds=tuple(
                (sl.start, sl.stop) for sl in decomp.local_slice(rank)
            ),
            neighbors=tuple(
                (decomp.neighbor(rank, d, -1), decomp.neighbor(rank, d, +1))
                for d in range(grid.dim)
            ),
            rho_name=self._mesh_names["rho"],
            accel_name=self._mesh_names["accel"],
            fft=fft,
        )

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        import multiprocessing as mp

        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        procs, conns = [], []
        for r in range(self.decomp.size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main, args=(child, self._worker_spec(r)),
                daemon=True, name=f"domain-{r}",
            )
            proc.start()
            child.close()
            procs.append(proc)
            conns.append(parent)
        self._procs, self._conns = procs, conns
        pings = self._round([("ping",)] * len(procs))
        if not self._started:
            self._started = True
            _emit(
                "domain_started",
                topology=list(self.topology), workers=len(procs),
                ghost=self.ghost, fft_library=pings[0]["fft_library"],
            )

    def _ensure_ready(self) -> None:
        if self.degraded:
            raise DomainWorkerError("engine is permanently degraded")
        if self.grid is None:
            raise RuntimeError("DomainEngine.bind() was never called")
        self._ensure_segments()
        self._ensure_workers()
        if self._host_dirty:
            for r in range(self.decomp.size):
                self._block_view(r, self._cur)[...] = \
                    self._host[self.decomp.local_slice(r)]
            self._host_dirty = False
            self._host_stale = False
            self.scatter_count += 1
            _emit("domain_scatter", nbytes=int(self._host.nbytes))

    def _teardown_workers(self, graceful: bool = False) -> None:
        procs, self._procs = self._procs, []
        conns, self._conns = self._conns, []
        for conn in conns:
            if graceful:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        for proc in procs:
            proc.join(timeout=0.5 if graceful else 0.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    def _release_segments(self) -> None:
        for shm in list(self._segments.values()):
            _release_segment(shm)
        self._segments.clear()
        self._seg_names = []
        self._mesh_names = {}
        self._fft_names = None

    def close(self) -> None:
        """Stop workers and unlink segments (engine stays re-bindable)."""
        had_workers = bool(self._procs)
        self._teardown_workers(graceful=True)
        self._release_segments()
        if had_workers:
            _emit("domain_closed")
        self.grid = None
        self.decomp = None
        self.scheme = ""
        self._started = False
        self._frontend = None

    def __enter__(self) -> "DomainEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self._teardown_workers()
            self._release_segments()
        except Exception:
            pass

    # -- command rounds --------------------------------------------------

    def _round(self, payloads: list) -> list:
        """Send one command per worker, collect every reply (a barrier)."""
        conns = self._conns
        if len(conns) != len(payloads):
            raise DomainWorkerError("worker fleet is down")
        try:
            for conn, payload in zip(conns, payloads):
                conn.send(payload)
        except (BrokenPipeError, OSError) as exc:
            raise DomainWorkerError(f"send failed: {exc!r}") from exc
        deadline = None if self.task_timeout is None \
            else time.monotonic() + self.task_timeout
        replies = []
        for r, conn in enumerate(conns):
            try:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not conn.poll(remaining):
                        raise DomainWorkerError(
                            f"worker {r} timed out after {self.task_timeout}s"
                        )
                status, value = conn.recv()
            except (EOFError, OSError) as exc:
                raise DomainWorkerError(f"worker {r} died: {exc!r}") from exc
            if status != "ok":
                raise DomainWorkerError(f"worker {r} failed:\n{value}")
            replies.append(value)
        return replies

    def _supervised_round(self, payloads: list) -> list:
        """A command round under the retry → degrade supervision policy.

        Worker death tears the fleet down and retries on fresh processes
        (segments survive — the current-role buffers are authoritative);
        an exhausted budget degrades the engine permanently, after
        syncing the host mirror from the surviving segments, and
        re-raises for the caller's fallback path.
        """
        delay = self.backoff_base
        for attempt in range(self.max_retries + 1):
            try:
                self._ensure_ready()
                return self._round(payloads)
            except DomainWorkerError as exc:
                if self.degraded:
                    raise
                self.retries += 1
                self._teardown_workers()
                _emit(
                    "domain_worker_failure",
                    attempt=attempt, error=repr(exc),
                )
                if attempt >= self.max_retries:
                    self._permanent_degrade(repr(exc))
                    raise
                time.sleep(delay)
                delay *= 2.0
        raise AssertionError("unreachable")  # pragma: no cover

    def _permanent_degrade(self, reason: str) -> None:
        if self.degraded:
            return
        # the parent created the segments: they outlive any worker death,
        # so the current-role blocks are intact recovery state (unless the
        # host mirror is the newer of the two — then it already wins)
        if self._host is not None and self._seg_names and not self._host_dirty:
            self._gather_into_host()
            self._host_stale = False
        self.degradations.append("domain")
        self.degraded = True
        _emit(
            "domain_degraded",
            from_engine="domain", to_backend="pencil-threads", reason=reason,
        )
        self._teardown_workers()
        self._release_segments()

    def _inject_call(self, fn, args) -> None:
        if not self._conns:
            return
        r = self._victim % len(self._conns)
        self._victim += 1
        try:
            self._conns[r].send(("call", fn, args))
        except (BrokenPipeError, OSError):  # pragma: no cover - racing death
            pass

    def make_fallback_engine(self) -> PencilEngine:
        """Next rung of the ladder: a threads PencilEngine (then serial)."""
        return PencilEngine(
            n_workers=self.size,
            backend="threads",
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            task_timeout=self.task_timeout,
        )

    # -- host mirror ----------------------------------------------------

    def _gather_into_host(self) -> None:
        for r in range(self.decomp.size):
            self._host[self.decomp.local_slice(r)] = \
                self._block_view(r, self._cur)

    def refresh_host(self) -> None:
        """Gather worker state into the host mirror if it is stale."""
        if self.degraded or self._host_stale is False or self._host_dirty:
            return
        self._gather_into_host()
        self._host_stale = False
        self.gather_count += 1
        _emit("domain_gather", nbytes=int(self._host.nbytes), reason="host")

    def mark_host_dirty(self) -> None:
        """Host mirror was mutated in place (fault injection, IC load)."""
        self._host_dirty = True
        self._host_stale = False

    # -- sweeps ----------------------------------------------------------

    def run_sweeps(self, items: list[dict], accel: np.ndarray | None) -> int:
        """Run directional sweeps on the workers; return how many fully
        completed.  A shortfall means the engine degraded mid-plan — the
        current f is then in the host mirror and the adapter finishes
        the remaining items there (bitwise, only slower)."""
        if self.degraded:
            return 0
        try:
            self._ensure_ready()
            if accel is not None:
                self._view(
                    self._mesh_names["accel"],
                    (self.grid.dim,) + self.grid.nx, np.float64,
                )[...] = accel
        except DomainWorkerError:
            self._permanent_degrade("fleet unavailable")
            return 0
        for k, item in enumerate(items):
            try:
                self._one_sweep(item)
            except DomainWorkerError:
                return k
        return len(items)

    def _one_sweep(self, item: dict) -> None:
        grid, decomp, g = self.grid, self.decomp, self.ghost
        d, kind = item["d"], item["kind"]
        ctx = self.timer.section(item["name"]) if self.timer is not None \
            else nullcontext()
        with ctx:
            if self.fault_hook is not None:
                self.fault_hook(self, _FaultPool(self))
            if kind == "x":
                max_u = float(np.abs(grid.u_centers(d)).max())
                if max_u * abs(item["factor"]) >= _CFL_LIMIT:
                    self._cfl_fallback(item)
                    return
            payloads = []
            p_axis = self.topology[d] if kind == "x" else 1
            for r in range(decomp.size):
                if kind != "x":
                    mode = "v"
                elif p_axis == 1:
                    mode = "local"
                elif self.overlap and decomp.local_shape(r)[d] >= 2 * g:
                    mode = "overlap"
                else:
                    mode = "padded"
                payloads.append(("sweep", {
                    "src": self._cur, "dst": 1 - self._cur,
                    "kind": kind, "d": d, "axis": item["axis"],
                    "factor": item["factor"], "bc": item["bc"],
                    "mode": mode,
                }))
            replies = self._supervised_round(payloads)
            self._cur = 1 - self._cur
            self._host_stale = True
            if self.timer is not None:
                self.timer.add("domain/interior", max(r[1] for r in replies))
                if kind == "x" and p_axis > 1:
                    self.timer.add("domain/halo", max(r[0] for r in replies))
                    self.timer.add(
                        "domain/boundary", max(r[2] for r in replies)
                    )
            if kind == "x" and p_axis > 1:
                self._log_halo(d)

    def _log_halo(self, d: int) -> None:
        """Account the sweep's ghost reads as the messages they replace.

        Reading the left neighbor's high slab is the message that
        neighbor would have sent rightward (``ghost+{axis}``), and
        symmetrically — identical pairs, sizes and tags to
        :func:`repro.parallel.exchange.exchange_ghosts`, which the vmpi
        parity test holds us to.  Self-sends (single block on the axis)
        are never logged, matching ``VirtualComm.sendrecv``.
        """
        grid, decomp, g = self.grid, self.decomp, self.ghost
        nu_cells = int(np.prod(grid.nu, dtype=np.int64))
        itemsize = np.dtype(grid.dtype).itemsize
        swept = 0
        for r in range(decomp.size):
            shape = decomp.local_shape(r)
            transverse = int(np.prod(shape, dtype=np.int64)) // shape[d]
            nbytes = g * transverse * nu_cells * itemsize
            left = decomp.neighbor(r, d, -1)
            right = decomp.neighbor(r, d, +1)
            self.halo_log.append(
                MessageRecord(src=left, dst=r, nbytes=nbytes, tag=f"ghost+{d}")
            )
            self.halo_log.append(
                MessageRecord(src=right, dst=r, nbytes=nbytes, tag=f"ghost-{d}")
            )
            swept += 2 * nbytes
        self.halo_bytes += swept
        _emit("domain_halo_exchange", axis=d, nbytes=swept,
              messages=2 * decomp.size)

    def _cfl_fallback(self, item: dict) -> None:
        """Gather → host sweep → scatter for a shift at or above 1 cell.

        Block sweeps are only bitwise below one cell of shift; rather
        than silently diverge, the engine pays two full-domain copies
        and runs the serial kernel.  Counted and published — a run that
        does this every step has its dt misconfigured for this engine.
        """
        self.cfl_fallbacks += 1
        self.gather_count += 1
        self.scatter_count += 1
        _emit("domain_cfl_fallback", axis=item["d"],
              factor=float(item["factor"]))
        _emit("domain_gather", nbytes=int(self._host.nbytes), reason="cfl")
        self._gather_into_host()
        u = self.grid.u_center_broadcast(item["d"])
        shift = u * item["factor"]
        if self._host_tmp is None or self._host_tmp.shape != self._host.shape \
                or self._host_tmp.dtype != self._host.dtype:
            self._host_tmp = np.empty_like(self._host)
        advect(self._host, shift, item["axis"], scheme=self.scheme,
               bc=item["bc"], out=self._host_tmp, arena=self._arena)
        self._host[...] = self._host_tmp
        for r in range(self.decomp.size):
            self._block_view(r, self._cur)[...] = \
                self._host[self.decomp.local_slice(r)]
        _emit("domain_scatter", nbytes=int(self._host.nbytes))
        self._host_stale = False

    # -- moments / guards ------------------------------------------------

    def density(self) -> np.ndarray:
        """The density mesh assembled from worker slabs (bitwise serial)."""
        self._ensure_ready()
        self._supervised_round([("density", self._cur)] * self.decomp.size)
        return np.array(
            self._view(self._mesh_names["rho"], self.grid.nx, np.float64)
        )

    def reduce_moments(self) -> dict:
        """Partial-sum reductions: ``{"mass": float, "ke": float}``.

        Summed per block then across blocks — not bitwise against the
        serial full-array ``np.sum`` (pairwise order differs), but exact
        to the ledger's drift tolerances; f itself is never touched.
        """
        self._ensure_ready()
        replies = self._supervised_round(
            [("reduce", self._cur)] * self.decomp.size
        )
        grid = self.grid
        mass = sum(r["mass"] for r in replies) * grid.cell_volume
        ke = 0.0
        for d in range(grid.dim):
            ke += sum(r["ke"][d] for r in replies)
        return {"mass": float(mass), "ke": float(0.5 * ke * grid.cell_volume)}

    def f_stats(self) -> tuple[int, float]:
        """(non-finite count, global min) of f — exact under aggregation."""
        self._ensure_ready()
        replies = self._supervised_round(
            [("stats", self._cur)] * self.decomp.size
        )
        return (
            int(sum(r[0] for r in replies)),
            float(min(r[1] for r in replies)),
        )

    # -- distributed FFT -------------------------------------------------

    def spectral_backend(self) -> "_DomainBackend":
        """The plan-cached frontend the Poisson solver should use."""
        if self._frontend is None:
            self._frontend = _DomainBackend(self)
        return self._frontend

    def _fft_eligible(self, shape: tuple[int, ...], axes) -> bool:
        if self.degraded or self.grid is None or axes is not None:
            return False
        if self._fft_names is None and not self._seg_names:
            # segments not allocated yet: they will be, if dim == 3
            if self.grid.dim != 3:
                return False
        elif self._fft_names is None:
            return False
        if tuple(shape) != self.grid.nx:
            return False
        if self._fft_ok is None:
            self._fft_probe()
        return bool(self._fft_ok)

    def _fft_probe(self) -> None:
        """One-time bitwise check of the staged transforms on the real
        staging buffers vs the serial backend; a mismatch (numpy's fused
        forward differs from its staged one, say) pins the field solve
        to the parent, published as ``domain_fft_fallback``."""
        self._fft_ok = False
        try:
            self._ensure_ready()
        except DomainWorkerError:
            return
        if self._fft_names is None:
            return
        nx = self.grid.nx
        idx = np.arange(
            int(np.prod(nx, dtype=np.int64)), dtype=np.float64
        ).reshape(nx)
        x = np.cos(0.37 * idx) + 0.25 * np.sin(0.113 * idx)
        try:
            fwd = self._dist_rfftn(x)
            ref_fwd = self._plain.rfftn(x)
            inv = self._dist_irfftn(ref_fwd)
            ref_inv = self._plain.irfftn(ref_fwd, s=nx)
        except DomainWorkerError:
            return
        if np.array_equal(fwd, ref_fwd) and np.array_equal(inv, ref_inv):
            self._fft_ok = True
        else:
            _emit(
                "domain_fft_fallback",
                reason="staged transforms not bitwise with "
                       f"{self._plain.library}",
            )

    def _dist_rfftn(self, x: np.ndarray) -> np.ndarray:
        self._ensure_ready()
        t0 = time.perf_counter()
        n0, n1, n2 = self.grid.nx
        self._view(self._fft_names[0], (n0, n1, n2), np.float64)[...] = x
        size = self.decomp.size
        for p in ("fwd0", "fwd1", "fwd2"):
            self._supervised_round([("fft", p)] * size)
        out = np.array(
            self._view(self._fft_names[1], (n0, n1, n2 // 2 + 1),
                       np.complex128)
        )
        if self.timer is not None:
            self.timer.add("domain/fft", time.perf_counter() - t0)
        return out

    def _dist_irfftn(self, x_k: np.ndarray) -> np.ndarray:
        self._ensure_ready()
        t0 = time.perf_counter()
        n0, n1, n2 = self.grid.nx
        self._view(
            self._fft_names[1], (n0, n1, n2 // 2 + 1), np.complex128
        )[...] = x_k
        size = self.decomp.size
        for p in ("inv0", "inv1", "inv2"):
            self._supervised_round([("fft", p)] * size)
        out = np.array(self._view(self._fft_names[0], (n0, n1, n2),
                                  np.float64))
        if self.timer is not None:
            self.timer.add("domain/fft", time.perf_counter() - t0)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DomainEngine(topology={self.topology}, "
            f"ghost={self.ghost}, degraded={self.degraded})"
        )


class _DomainBackend(SpectralBackend):
    """SpectralBackend whose 3-D mesh transforms run on the workers.

    Everything else — k-space products, plan records, counters, the
    numpy fallback, any transform that is not the bound mesh's shape —
    is the plain parent-side backend, so the Poisson solver's code runs
    unmodified and stays bitwise with serial whether or not a given
    transform was distributed.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: DomainEngine) -> None:
        super().__init__()
        self._engine = engine

    def rfftn(self, x: np.ndarray, axes=None) -> np.ndarray:
        eng = self._engine
        if eng._fft_eligible(x.shape, axes):
            try:
                out = eng._dist_rfftn(np.asarray(x, dtype=np.float64))
            except DomainWorkerError:
                out = None
            if out is not None:
                self.n_forward += 1
                self._plans.add(("rfftn", x.shape))
                return out
        return super().rfftn(x, axes=axes)

    def irfftn(self, x_k: np.ndarray, s, axes=None) -> np.ndarray:
        eng = self._engine
        s_t = tuple(s)
        if eng._fft_eligible(s_t, axes):
            try:
                out = eng._dist_irfftn(np.asarray(x_k, dtype=np.complex128))
            except DomainWorkerError:
                out = None
            if out is not None:
                self.n_inverse += 1
                self._plans.add(("irfftn", s_t))
                return out
        return super().irfftn(x_k, s, axes=axes)


class DomainSolverAdapter:
    """Drop-in :class:`VlasovSolver` facade over a :class:`DomainEngine`.

    Owns a real host-side solver as (a) the lazily synced mirror of f —
    ``adapter.f`` gathers only when read, so checkpoints and diagnostics
    work while steps never pay a full-domain copy — and (b) the degraded
    executor: when the engine exhausts its supervision budget mid-plan,
    the remaining sweeps finish on the host solver with a threads
    :class:`PencilEngine` (the **domain → pencil → serial** ladder),
    computing shifts with exactly the serial solver's arithmetic so the
    answer never changes.
    """

    def __init__(
        self,
        engine: DomainEngine,
        grid: PhaseSpaceGrid,
        scheme: str = "slmpp5",
        velocity_bc: str = "zero",
        timer: "StepTimer | None" = None,
        layout=None,
    ) -> None:
        self.engine = engine
        self.grid = grid
        self.scheme = scheme
        self.velocity_bc = velocity_bc
        self.timer = timer
        self.solver = VlasovSolver(
            grid, scheme=scheme, velocity_bc=velocity_bc,
            timer=timer, layout=layout,
        )
        engine.bind(grid, scheme, timer=timer, velocity_bc=velocity_bc)
        engine.set_host(self.solver.f, dirty=True)
        self.mode = "domain"

    # -- state ----------------------------------------------------------

    def _active(self) -> bool:
        if self.mode == "domain" and self.engine.degraded:
            self._adopt_fallback()
        return self.mode == "domain"

    def _adopt_fallback(self) -> None:
        if self.mode != "domain":
            return
        self.mode = "fallback"
        self.solver.engine = self.engine.make_fallback_engine()

    @property
    def f(self) -> np.ndarray:
        """The distribution function (gathers from the workers if stale)."""
        if self._active():
            self.engine.refresh_host()
        return self.solver.f

    @f.setter
    def f(self, value: np.ndarray) -> None:
        self.solver.f = np.asarray(value, dtype=self.grid.dtype)
        if self.mode == "domain":
            self.engine.set_host(self.solver.f, dirty=True)

    def notify_f_mutated(self) -> None:
        """The host array was mutated in place (fault injection)."""
        if self._active():
            self.engine.mark_host_dirty()

    def f_stats(self) -> tuple[int, float]:
        """(non-finite count, min) without gathering (guards hot path)."""
        if self._active():
            try:
                return self.engine.f_stats()
            except DomainWorkerError:
                self._adopt_fallback()
        f = self.f
        n_bad = int(f.size - np.count_nonzero(np.isfinite(f)))
        return (n_bad, float(f.min()))

    # -- split operators -------------------------------------------------

    def drift(self, dt_drift: float) -> None:
        """Spatial advections, z-y-x order (Eq. 5)."""
        items = [
            {
                "name": f"vlasov/drift/{_AXIS_NAMES[d]}",
                "kind": "x", "d": d,
                "axis": self.grid.spatial_axis(d),
                "factor": dt_drift / self.grid.dx[d],
                "bc": "periodic",
            }
            for d in reversed(range(self.grid.dim))
        ]
        self._run_plan(items, accel=None)

    def kick(self, accel: np.ndarray, dt_kick: float) -> None:
        """Velocity advections, x-y-z order (Eq. 5); block-local always."""
        accel = np.asarray(accel)
        if accel.shape != (self.grid.dim,) + self.grid.nx:
            raise ValueError(
                f"accel shape {accel.shape} != "
                f"{(self.grid.dim,) + self.grid.nx}"
            )
        items = [
            {
                "name": f"vlasov/kick/u{_AXIS_NAMES[d]}",
                "kind": "v", "d": d,
                "axis": self.grid.velocity_axis(d),
                "factor": dt_kick / self.grid.du[d],
                "bc": self.velocity_bc,
            }
            for d in range(self.grid.dim)
        ]
        self._run_plan(items, accel=accel)

    def strang_step(
        self, accel_first, dt_kick_first, dt_drift,
        recompute_accel, dt_kick_second,
    ) -> None:
        """One full KDK step (matches :meth:`VlasovSolver.strang_step`)."""
        self.kick(accel_first, dt_kick_first)
        self.drift(dt_drift)
        self.kick(recompute_accel(), dt_kick_second)

    def _run_plan(self, items: list[dict], accel) -> None:
        if self._active():
            done = self.engine.run_sweeps(
                items, np.asarray(accel, dtype=np.float64)
                if accel is not None else None,
            )
            items = items[done:]
            if not items:
                return
            # the engine degraded mid-plan; it has already synced f into
            # our host solver's array — finish there
            self._adopt_fallback()
        for item in items:
            self._host_sweep(item, accel)

    def _host_sweep(self, item: dict, accel) -> None:
        """One sweep on the host solver, shift arithmetic bit-for-bit the
        serial solver's (``u * (dt/dx)`` / ``a_d * (dt/du)``)."""
        d = item["d"]
        if item["kind"] == "x":
            u = self.grid.u_center_broadcast(d)
            shift = u * item["factor"]
        else:
            a_d = np.asarray(accel)[d].astype(np.float64, copy=False)
            a_d = a_d.reshape(self.grid.nx + (1,) * self.grid.dim)
            shift = a_d * item["factor"]
        self.solver._sweep(item["name"], shift, item["axis"], item["bc"])

    # -- CFL bookkeeping --------------------------------------------------

    def max_drift_cfl(self, dt_drift: float) -> float:
        """Largest spatial shift in cells (see :class:`VlasovSolver`)."""
        return max(
            self.grid.v_max * abs(dt_drift) / self.grid.dx[d]
            for d in range(self.grid.dim)
        )

    def max_kick_cfl(self, accel: np.ndarray, dt_kick: float) -> float:
        """Largest velocity shift in cells (see :class:`VlasovSolver`)."""
        accel = np.asarray(accel)
        return max(
            float(np.abs(accel[d]).max()) * abs(dt_kick) / self.grid.du[d]
            for d in range(self.grid.dim)
        )

    # -- moments ----------------------------------------------------------

    def density(self) -> np.ndarray:
        """Mass density on the spatial mesh (worker-resident, bitwise)."""
        if self._active():
            try:
                return self.engine.density()
            except DomainWorkerError:
                self._adopt_fallback()
        return self.solver.density()

    def total_mass(self) -> float:
        """Total phase-space mass (distributed partial sums)."""
        if self._active():
            try:
                return self.engine.reduce_moments()["mass"]
            except DomainWorkerError:
                self._adopt_fallback()
        return self.solver.total_mass()

    def kinetic_energy(self) -> float:
        """Kinetic energy (distributed partial sums)."""
        if self._active():
            try:
                return self.engine.reduce_moments()["ke"]
            except DomainWorkerError:
                self._adopt_fallback()
        return self.solver.kinetic_energy()
