"""Particle communication for the decomposed N-body part (paper §5.1.3).

"the MPI data communication in N-body part mainly takes place in
computing the mass density field contributed by the N-body particles and
also in computing the short-range forces of the N-body particles with
the tree method, both of which require N-body particle distribution in
the vicinity of adjacent domain boundaries."

Two primitives over the virtual runtime:

* :func:`migrate_particles` — after a drift, every particle moves to the
  rank owning its new position (the ownership invariant);
* :func:`exchange_boundary_particles` — each rank receives copies of all
  neighbor particles within ``r_cut`` of its domain (the tree walk's
  import region), as minimum-image-shifted ghosts.

Both log byte-accurate messages; the equality test
(`tests/test_particle_exchange.py`) shows the decomposed short-range
force equals the global one exactly.
"""

from __future__ import annotations

import numpy as np

from ..nbody.particles import ParticleSet
from .decomposition import DomainDecomposition
from .vmpi import VirtualComm

#: bytes per particle on the wire: 3 pos + 3 vel (float64) + mass
WIRE_BYTES_PER_PARTICLE = 56


def owner_of(positions: np.ndarray, decomp: DomainDecomposition, box: float) -> np.ndarray:
    """Rank owning each position (block decomposition of [0, box)^dim)."""
    dim = decomp.dim
    if positions.shape[1] != dim:
        raise ValueError("dimensionality mismatch")
    ranks = np.zeros(positions.shape[0], dtype=np.int64)
    for d in range(dim):
        width = box / decomp.n_proc[d]
        coord = np.clip(
            (positions[:, d] / width).astype(np.int64), 0, decomp.n_proc[d] - 1
        )
        ranks = ranks * decomp.n_proc[d] + coord
    return ranks


def decompose_particles(
    particles: ParticleSet, decomp: DomainDecomposition
) -> list[ParticleSet]:
    """Split a global particle set into per-rank local sets."""
    ranks = owner_of(particles.positions, decomp, particles.box_size)
    out = []
    for r in range(decomp.size):
        sel = ranks == r
        out.append(
            ParticleSet(
                particles.positions[sel].copy(),
                particles.velocities[sel].copy(),
                particles.masses[sel].copy(),
                particles.box_size,
            )
        )
    return out


def migrate_particles(
    local_sets: list[ParticleSet],
    decomp: DomainDecomposition,
    comm: VirtualComm,
) -> list[ParticleSet]:
    """Restore the ownership invariant after a drift.

    Every particle that left its rank's block is shipped to the new owner
    (one logged message per populated (src, dst) pair, of the exact wire
    size).
    """
    if len(local_sets) != decomp.size:
        raise ValueError("one local set per rank required")
    box = local_sets[0].box_size
    outgoing: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {
        r: [] for r in range(decomp.size)
    }
    for src, pset in enumerate(local_sets):
        if pset.n == 0:
            continue
        owners = owner_of(pset.positions, decomp, box)
        for dst in np.unique(owners):
            sel = owners == dst
            payload = (
                pset.positions[sel],
                pset.velocities[sel],
                pset.masses[sel],
            )
            outgoing[int(dst)].append(payload)
            if int(dst) != src:
                comm.log.messages.append(_record(src, int(dst), int(sel.sum())))
    out = []
    for r in range(decomp.size):
        if outgoing[r]:
            pos = np.concatenate([p for p, _, _ in outgoing[r]])
            vel = np.concatenate([v for _, v, _ in outgoing[r]])
            m = np.concatenate([mm for _, _, mm in outgoing[r]])
        else:
            pos = np.empty((0, decomp.dim))
            vel = np.empty((0, decomp.dim))
            m = np.empty(0)
        out.append(ParticleSet(pos, vel, m, box))
    return out


def _record(src: int, dst: int, count: int, tag: str = "migrate"):
    from .vmpi import MessageRecord

    return MessageRecord(src, dst, count * WIRE_BYTES_PER_PARTICLE, tag)


def exchange_boundary_particles(
    local_sets: list[ParticleSet],
    decomp: DomainDecomposition,
    r_cut: float,
    comm: VirtualComm,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Ghost particles for the short-range force.

    Returns, per rank, ``(positions, masses)`` of every *remote* particle
    within ``r_cut`` of the rank's block — shifted into the minimum image
    relative to the block, so the consumer can use plain distances.  The
    import region is the standard shell the paper's tree part
    communicates.
    """
    if r_cut <= 0:
        raise ValueError("r_cut must be positive")
    box = local_sets[0].box_size
    dim = decomp.dim
    lows = np.empty((decomp.size, dim))
    highs = np.empty((decomp.size, dim))
    for r in range(decomp.size):
        coords = decomp.coords_of(r)
        for d in range(dim):
            width = box / decomp.n_proc[d]
            lows[r, d] = coords[d] * width
            highs[r, d] = (coords[d] + 1) * width

    ghosts: list[tuple[np.ndarray, np.ndarray]] = []
    for r in range(decomp.size):
        pos_chunks, mass_chunks = [], []
        for src in range(decomp.size):
            if src == r or local_sets[src].n == 0:
                continue
            pos = local_sets[src].positions
            # minimum-image displacement to the block (per axis clamp)
            delta = np.zeros_like(pos)
            shifted = pos.copy()
            for d in range(dim):
                # shift each particle into the image closest to the block
                center = 0.5 * (lows[r, d] + highs[r, d])
                off = pos[:, d] - center
                wrap = np.round(off / box) * box
                shifted[:, d] = pos[:, d] - wrap
                delta[:, d] = np.clip(
                    shifted[:, d], lows[r, d], highs[r, d]
                ) - shifted[:, d]
            dist = np.sqrt((delta**2).sum(axis=1))
            sel = dist <= r_cut
            if not np.any(sel):
                continue
            pos_chunks.append(shifted[sel])
            mass_chunks.append(local_sets[src].masses[sel])
            comm.log.messages.append(
                _record(src, r, int(sel.sum()), tag="boundary")
            )
        if pos_chunks:
            ghosts.append(
                (np.concatenate(pos_chunks), np.concatenate(mass_chunks))
            )
        else:
            ghosts.append((np.empty((0, dim)), np.empty(0)))
    return ghosts
