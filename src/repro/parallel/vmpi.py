"""Virtual MPI runtime: executes data-parallel operations in-process while
keeping byte-accurate communication accounts.

Per the substitution table in DESIGN.md: we have one node, no MPI, but the
*communication structure* of the paper's code — who sends how many bytes to
whom, which collectives run at what sizes — is exactly reproducible.  A
:class:`VirtualComm` holds one array per rank and implements the operations
the simulation needs (point-to-point ghost exchange, allreduce, alltoall)
by direct memory copies, logging every message as a
:class:`MessageRecord`.

The cost model in :mod:`repro.machine` replays these logs against the
Tofu-D network model to produce communication-time estimates; the
*correctness* of the decomposed algorithms (same answer as the
single-domain code) is validated directly in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np


@dataclass(frozen=True)
class MessageRecord:
    """One logged point-to-point message."""

    src: int
    dst: int
    nbytes: int
    tag: str


@dataclass(frozen=True)
class CollectiveRecord:
    """One logged collective operation."""

    kind: str
    participants: int
    nbytes_per_rank: int
    tag: str


@dataclass
class CommLog:
    """Accumulated communication records of a virtual run."""

    messages: list[MessageRecord] = field(default_factory=list)
    collectives: list[CollectiveRecord] = field(default_factory=list)

    def total_p2p_bytes(self) -> int:
        """Sum of all point-to-point payloads."""
        return sum(m.nbytes for m in self.messages)

    def p2p_bytes_by_pair(self) -> dict[tuple[int, int], int]:
        """Aggregate payload per (src, dst) pair."""
        out: dict[tuple[int, int], int] = {}
        for m in self.messages:
            key = (m.src, m.dst)
            out[key] = out.get(key, 0) + m.nbytes
        return out

    def clear(self) -> None:
        """Drop all records."""
        self.messages.clear()
        self.collectives.clear()


class VirtualComm:
    """A communicator over ``size`` virtual ranks.

    Rank-local data lives in plain Python lists indexed by rank; every
    transfer between entries is logged.  Operations are synchronous and
    deterministic — the numerical results are identical to a serial run,
    which is what the decomposition tests assert.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = size
        self.log = CommLog()

    # -- point to point ---------------------------------------------------

    def sendrecv(
        self,
        data_by_rank: list[np.ndarray],
        dest_of: Callable[[int], int],
        tag: str = "",
    ) -> list[np.ndarray]:
        """Every rank sends its array to ``dest_of(rank)``; returns the
        received arrays (indexed by receiving rank)."""
        self._check(data_by_rank)
        recv: list[np.ndarray | None] = [None] * self.size
        for src in range(self.size):
            dst = dest_of(src) % self.size
            payload = np.ascontiguousarray(data_by_rank[src])
            if dst != src:
                self.log.messages.append(
                    MessageRecord(src, dst, payload.nbytes, tag)
                )
            recv[dst] = payload.copy()
        return recv  # type: ignore[return-value]

    # -- collectives --------------------------------------------------------

    def allreduce_sum(self, values: list, tag: str = "") -> list:
        """Sum across ranks, result replicated (scalar or array entries)."""
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        total = values[0]
        for v in values[1:]:
            total = total + v
        nbytes = np.asarray(values[0]).nbytes
        self.log.collectives.append(
            CollectiveRecord("allreduce", self.size, nbytes, tag)
        )
        return [np.copy(total) if isinstance(total, np.ndarray) else total] * self.size

    def allreduce_max(self, values: list, tag: str = "") -> list:
        """Max across ranks, result replicated."""
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        total = values[0]
        for v in values[1:]:
            total = np.maximum(total, v)
        nbytes = np.asarray(values[0]).nbytes
        self.log.collectives.append(
            CollectiveRecord("allreduce", self.size, nbytes, tag)
        )
        return [total] * self.size

    def alltoall(
        self, chunks_by_rank: list[list[np.ndarray]], tag: str = ""
    ) -> list[list[np.ndarray]]:
        """chunks_by_rank[src][dst] -> returns received[dst][src].

        The FFT transposes of the 2-D pencil decomposition are alltoalls
        over sub-communicators; this is the primitive they use.
        """
        self._check(chunks_by_rank)
        for row in chunks_by_rank:
            if len(row) != self.size:
                raise ValueError("each rank must provide one chunk per peer")
        recv = [[None] * self.size for _ in range(self.size)]
        per_rank_bytes = 0
        for src in range(self.size):
            for dst in range(self.size):
                payload = np.ascontiguousarray(chunks_by_rank[src][dst])
                if dst != src:
                    self.log.messages.append(
                        MessageRecord(src, dst, payload.nbytes, tag)
                    )
                    per_rank_bytes += payload.nbytes
                recv[dst][src] = payload.copy()
        self.log.collectives.append(
            CollectiveRecord(
                "alltoall", self.size, per_rank_bytes // max(self.size, 1), tag
            )
        )
        return recv  # type: ignore[return-value]

    def _check(self, seq: Iterable) -> None:
        if len(list(seq)) != self.size:
            raise ValueError(f"expected one entry per rank ({self.size})")
