"""Spatial domain decomposition (paper §5.1.3).

The physical space is decomposed evenly into ``n_x x n_y x n_z`` blocks —
one per MPI process — while the velocity space is *never* decomposed:
"each spatial grid point holds an entire mesh grid for the velocity space
so that the calculation of the velocity moments ... can be performed
without any data transfer among MPI processes".

This module is pure geometry: rank <-> block mapping, local slices,
neighbor ranks, ghost-layer widths (3 layers for the 5-point-stencil
fifth-order scheme), and message-size arithmetic.  The execution layer
lives in :mod:`repro.parallel.vmpi` and :mod:`repro.parallel.exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Ghost layers required per side by reconstruction order (stencil reach
#: of the donor cell at CFL <= 1: (order-1)/2 + 1).
GHOST_WIDTH = {1: 1, 3: 2, 5: 3, 7: 4}


def pencil_slices(n: int, parts: int) -> list[slice]:
    """Balanced contiguous partition of an ``n``-cell axis into pencils.

    The 1-D analog of the block decomposition below, without the
    even-divisibility requirement: the first ``n % parts`` pencils get
    one extra cell.  ``parts`` is clipped to ``n`` so every pencil is
    non-empty.  This is the shard geometry of
    :class:`repro.perf.pencil.PencilEngine` (one pencil per worker along
    a non-advected axis) and matches :meth:`DomainDecomposition.local_slice`
    whenever ``n`` divides evenly.
    """
    if n < 1:
        raise ValueError("axis length must be >= 1")
    if parts < 1:
        raise ValueError("parts must be >= 1")
    parts = min(parts, n)
    base, extra = divmod(n, parts)
    out: list[slice] = []
    start = 0
    for p in range(parts):
        ln = base + (1 if p < extra else 0)
        out.append(slice(start, start + ln))
        start += ln
    return out


@dataclass(frozen=True)
class DomainDecomposition:
    """Even block decomposition of a periodic spatial mesh.

    Attributes
    ----------
    n_mesh:
        Global spatial mesh points per axis.
    n_proc:
        Process-grid extents per axis, e.g. (24, 24, 12); the number of
        MPI processes is their product (Table 2's (n_x, n_y, n_z)).
    """

    n_mesh: tuple[int, ...]
    n_proc: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_mesh", tuple(int(n) for n in self.n_mesh))
        object.__setattr__(self, "n_proc", tuple(int(n) for n in self.n_proc))
        if len(self.n_mesh) != len(self.n_proc):
            raise ValueError("mesh and process grid dimensionality differ")
        for nm, npr in zip(self.n_mesh, self.n_proc):
            if npr < 1:
                raise ValueError("process counts must be >= 1")
            if nm % npr != 0:
                raise ValueError(
                    f"mesh extent {nm} not divisible by process count {npr} "
                    "(the paper decomposes evenly)"
                )

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return len(self.n_mesh)

    @property
    def size(self) -> int:
        """Total number of ranks."""
        return int(np.prod(self.n_proc))

    @property
    def local_shape(self) -> tuple[int, ...]:
        """Mesh points per axis in every local block."""
        return tuple(nm // npr for nm, npr in zip(self.n_mesh, self.n_proc))

    # -- rank <-> coordinates -------------------------------------------

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Process-grid coordinates of a rank (C order: z fastest)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        coords = []
        rem = rank
        for npr in reversed(self.n_proc):
            coords.append(rem % npr)
            rem //= npr
        return tuple(reversed(coords))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Rank of process-grid coordinates (periodic wrap applied)."""
        if len(coords) != self.dim:
            raise ValueError("coordinate dimensionality mismatch")
        rank = 0
        for c, npr in zip(coords, self.n_proc):
            rank = rank * npr + (c % npr)
        return rank

    def neighbor(self, rank: int, axis: int, direction: int) -> int:
        """Rank of the periodic neighbor along an axis (direction ±1)."""
        coords = list(self.coords_of(rank))
        coords[axis] += direction
        return self.rank_of(tuple(coords))

    # -- slices ------------------------------------------------------------

    def local_slice(self, rank: int) -> tuple[slice, ...]:
        """Global-array slice owned by a rank."""
        coords = self.coords_of(rank)
        out = []
        for c, nl in zip(coords, self.local_shape):
            out.append(slice(c * nl, (c + 1) * nl))
        return tuple(out)

    def scatter(self, global_array: np.ndarray) -> list[np.ndarray]:
        """Split a global array (spatial axes leading) into rank blocks."""
        if global_array.shape[: self.dim] != self.n_mesh:
            raise ValueError(
                f"leading axes {global_array.shape[:self.dim]} != mesh {self.n_mesh}"
            )
        return [
            np.ascontiguousarray(global_array[self.local_slice(r)])
            for r in range(self.size)
        ]

    def gather(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Reassemble rank blocks into the global array."""
        if len(blocks) != self.size:
            raise ValueError(f"expected {self.size} blocks, got {len(blocks)}")
        trailing = blocks[0].shape[self.dim :]
        out = np.empty(self.n_mesh + trailing, dtype=blocks[0].dtype)
        for r, blk in enumerate(blocks):
            if blk.shape != self.local_shape + trailing:
                raise ValueError(f"block {r} has shape {blk.shape}")
            out[self.local_slice(r)] = blk
        return out

    # -- message arithmetic -------------------------------------------------

    def ghost_bytes_per_exchange(
        self, trailing_cells: int, itemsize: int, ghost: int
    ) -> int:
        """Bytes sent by one rank in one full ghost exchange (all axes,
        both directions) for a field with ``trailing_cells`` per spatial
        mesh point (the velocity-space volume for the Vlasov f)."""
        nl = self.local_shape
        total = 0
        for ax in range(self.dim):
            face = int(np.prod(nl)) // nl[ax]
            total += 2 * ghost * face * trailing_cells * itemsize
        return total


@dataclass(frozen=True)
class BlockDecomposition:
    """Block decomposition of a periodic mesh *without* even divisibility.

    Same rank <-> coordinate <-> slice geometry as
    :class:`DomainDecomposition` (C order, z fastest), but each axis is
    split with :func:`pencil_slices`, so the first ``n % parts`` blocks
    along an axis carry one extra cell.  This is the shard geometry of
    the real-transport :class:`repro.parallel.domain.DomainEngine`, which
    must accept production grid shapes that do not divide evenly across
    the worker topology.  ``DomainDecomposition`` stays strict on purpose
    — it models the paper's even MPI layout and its message arithmetic
    assumes uniform blocks.
    """

    n_mesh: tuple[int, ...]
    n_proc: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_mesh", tuple(int(n) for n in self.n_mesh))
        object.__setattr__(self, "n_proc", tuple(int(n) for n in self.n_proc))
        if len(self.n_mesh) != len(self.n_proc):
            raise ValueError("mesh and process grid dimensionality differ")
        for nm, npr in zip(self.n_mesh, self.n_proc):
            if npr < 1:
                raise ValueError("process counts must be >= 1")
            if npr > nm:
                raise ValueError(
                    f"process count {npr} exceeds mesh extent {nm} "
                    "(every block must own at least one cell)"
                )

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return len(self.n_mesh)

    @property
    def size(self) -> int:
        """Total number of ranks."""
        return int(np.prod(self.n_proc))

    def axis_slices(self, axis: int) -> list[slice]:
        """The per-block slices along one axis (balanced, contiguous)."""
        return pencil_slices(self.n_mesh[axis], self.n_proc[axis])

    # -- rank <-> coordinates -------------------------------------------

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Process-grid coordinates of a rank (C order: z fastest)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        coords = []
        rem = rank
        for npr in reversed(self.n_proc):
            coords.append(rem % npr)
            rem //= npr
        return tuple(reversed(coords))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Rank of process-grid coordinates (periodic wrap applied)."""
        if len(coords) != self.dim:
            raise ValueError("coordinate dimensionality mismatch")
        rank = 0
        for c, npr in zip(coords, self.n_proc):
            rank = rank * npr + (c % npr)
        return rank

    def neighbor(self, rank: int, axis: int, direction: int) -> int:
        """Rank of the periodic neighbor along an axis (direction ±1)."""
        coords = list(self.coords_of(rank))
        coords[axis] += direction
        return self.rank_of(tuple(coords))

    # -- slices ------------------------------------------------------------

    def local_slice(self, rank: int) -> tuple[slice, ...]:
        """Global-array slice owned by a rank."""
        coords = self.coords_of(rank)
        return tuple(
            self.axis_slices(ax)[c] for ax, c in enumerate(coords)
        )

    def local_shape(self, rank: int) -> tuple[int, ...]:
        """Mesh points per axis of one rank's block (blocks may differ)."""
        return tuple(sl.stop - sl.start for sl in self.local_slice(rank))

    def scatter(self, global_array: np.ndarray) -> list[np.ndarray]:
        """Split a global array (spatial axes leading) into rank blocks."""
        if global_array.shape[: self.dim] != self.n_mesh:
            raise ValueError(
                f"leading axes {global_array.shape[:self.dim]} != mesh {self.n_mesh}"
            )
        return [
            np.ascontiguousarray(global_array[self.local_slice(r)])
            for r in range(self.size)
        ]

    def gather(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Reassemble rank blocks into the global array."""
        if len(blocks) != self.size:
            raise ValueError(f"expected {self.size} blocks, got {len(blocks)}")
        trailing = blocks[0].shape[self.dim :]
        out = np.empty(self.n_mesh + trailing, dtype=blocks[0].dtype)
        for r, blk in enumerate(blocks):
            if blk.shape != self.local_shape(r) + trailing:
                raise ValueError(f"block {r} has shape {blk.shape}")
            out[self.local_slice(r)] = blk
        return out
