"""Persistent domain-decomposition worker processes (paper §5 layout).

One worker per spatial block, alive for the whole run: the block's slab
of the distribution function lives in two ``multiprocessing.shared_memory``
segments (the double buffer of :class:`repro.core.vlasov.VlasovSolver`,
made cross-process), and every command from the parent addresses those
segments by *role* index — the worker itself is stateless about which
buffer currently holds f, so a killed-and-respawned worker resumes from
the untouched current-role segment without any re-scatter.

The sweep command implements the paper's communication hiding (§5.1.3):
a helper thread assembles the two boundary ghost slabs by reading the
neighbor blocks' shared segments **while the main thread advects the
full local block**; the boundary pencils are then recomputed from the
ghost slabs and overwrite the (locally wrapped, hence wrong) first and
last ``ghost`` layers of the output.  Both the overlapped-stitch and the
padded fallback produce results bitwise-identical to the serial sweep as
long as every shift stays below one cell — the engine enforces that CFL
cap and gathers to the host for the rare sweep that exceeds it.

The FFT commands are the per-pass bodies of the 2-D pencil-decomposed
transform (promoted from :mod:`repro.parallel.fft_decomp`'s virtual-comm
replay to real cross-worker transposes through shared staging buffers);
the pass order matches :meth:`repro.perf.fft.SpectralBackend.irfftn`'s
separable plan exactly, which is what makes the distributed field solve
bitwise-identical to the serial one.

Everything here must stay importable under the ``spawn`` start method:
module-level functions only, specs picklable.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass

import numpy as np

from ..core.advection import advect
from ..core.mesh import PhaseSpaceGrid
from ..perf.arena import ScratchArena
from ..perf.pencil import _attach_shm
from .decomposition import pencil_slices

try:  # pragma: no cover - exercised on hosts with scipy
    import scipy.fft as _fft_lib

    _FFT_LIBRARY = "scipy.fft"
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _fft_lib = None
    _FFT_LIBRARY = "numpy.fft"

__all__ = ["WorkerSpec", "worker_main"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs to attach and serve (picklable).

    ``seg_names`` / ``block_shapes`` cover *all* ranks: halo exchange
    reads the neighbors' current-role segments directly, so every worker
    can attach every block segment (attachment is an mmap, not a copy).
    """

    rank: int
    size: int
    grid: PhaseSpaceGrid
    scheme: str
    ghost: int
    #: per-rank (role-0 name, role-1 name) block segments
    seg_names: tuple[tuple[str, str], ...]
    #: per-rank spatial block shape (trailing velocity axes are grid.nu)
    block_shapes: tuple[tuple[int, ...], ...]
    #: this rank's (start, stop) per spatial axis in the global mesh
    own_bounds: tuple[tuple[int, int], ...]
    #: this rank's (left, right) neighbor rank per spatial axis
    neighbors: tuple[tuple[int, int], ...]
    rho_name: str
    accel_name: str
    #: 2-D pencil FFT role: {"names": (real, spec0, spec1), "p1", "p2"}
    fft: dict | None


class _WorkerState:
    """Attached segments, cached views and scratch of one worker."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.grid = spec.grid
        self.arena = ScratchArena()
        self._shm: dict[str, object] = {}
        self._views: dict = {}
        self._scratch: dict = {}

    def _segment(self, name: str):
        shm = self._shm.get(name)
        if shm is None:
            shm = self._shm[name] = _attach_shm(name)
        return shm

    def block(self, rank: int, role: int) -> np.ndarray:
        key = ("block", rank, role)
        view = self._views.get(key)
        if view is None:
            shape = self.spec.block_shapes[rank] + self.grid.nu
            shm = self._segment(self.spec.seg_names[rank][role])
            view = np.ndarray(shape, dtype=self.grid.dtype, buffer=shm.buf)
            self._views[key] = view
        return view

    def mesh(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = ("mesh", name)
        view = self._views.get(key)
        if view is None:
            shm = self._segment(name)
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
            self._views[key] = view
        return view

    def scratch(self, key, shape, dtype) -> np.ndarray:
        buf = self._scratch.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = self._scratch[key] = np.empty(shape, dtype=dtype)
        return buf

    def close(self) -> None:
        self._views.clear()
        for shm in self._shm.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view teardown order
                pass
        self._shm.clear()


def _ax(ndim: int, axis: int, sl: slice) -> tuple:
    """Index tuple slicing ``sl`` along ``axis`` only."""
    return tuple(sl if d == axis else slice(None) for d in range(ndim))


# -- sweep ------------------------------------------------------------------


def _shift_for(state: _WorkerState, job: dict) -> np.ndarray:
    """The advection shift, computed exactly as the serial solver does.

    Drift: ``u_center_broadcast(d) * (dt/dx_d)`` — identical on every
    rank (velocity space is never decomposed).  Kick: the block's slab of
    the float64 acceleration mesh times ``dt/du_d``; an elementwise
    product of a slab equals the slab of the product, so the bits match
    the serial full-mesh shift row for row.
    """
    grid, d, factor = state.grid, job["d"], job["factor"]
    if job["kind"] == "x":
        return grid.u_center_broadcast(d) * factor
    accel = state.mesh(
        state.spec.accel_name, (grid.dim,) + grid.nx, np.float64
    )
    own = tuple(slice(lo, hi) for lo, hi in state.spec.own_bounds)
    a_d = np.ascontiguousarray(accel[d][own])
    a_d = a_d.reshape(a_d.shape + (1,) * grid.dim)
    return a_d * factor


def _sweep(state: _WorkerState, job: dict) -> tuple:
    """One directional advection of the local block.

    Returns ``(halo_seconds, interior_seconds, boundary_seconds)``;
    halo time is the ghost-slab assembly measured on its thread, which
    runs concurrently with the interior advection.
    """
    spec, grid = state.spec, state.grid
    cur = state.block(spec.rank, job["src"])
    dst = state.block(spec.rank, job["dst"])
    axis, mode, g = job["axis"], job["mode"], spec.ghost
    shift = _shift_for(state, job)
    ndim = cur.ndim

    if mode in ("v", "local"):
        t0 = time.perf_counter()
        advect(cur, shift, axis, scheme=spec.scheme, bc=job["bc"],
               out=dst, arena=state.arena)
        return (0.0, time.perf_counter() - t0, 0.0)

    d = job["d"]
    n = cur.shape[axis]
    left, right = spec.neighbors[d]
    nbr_l = state.block(left, job["src"])
    nbr_r = state.block(right, job["src"])
    n_l = nbr_l.shape[axis]

    if mode == "padded":
        # block too thin to split into interior + boundary: assemble the
        # fully padded slab first (no overlap), advect, copy the center.
        t0 = time.perf_counter()
        pshape = list(cur.shape)
        pshape[axis] = n + 2 * g
        padded = state.scratch(("pad", axis), tuple(pshape), cur.dtype)
        padded[_ax(ndim, axis, slice(0, g))] = \
            nbr_l[_ax(ndim, axis, slice(n_l - g, n_l))]
        padded[_ax(ndim, axis, slice(g, g + n))] = cur
        padded[_ax(ndim, axis, slice(g + n, g + n + g))] = \
            nbr_r[_ax(ndim, axis, slice(0, g))]
        t1 = time.perf_counter()
        out = state.scratch(("pad_out", axis), tuple(pshape), cur.dtype)
        advect(padded, shift, axis, scheme=spec.scheme, bc="periodic",
               out=out, arena=state.arena)
        dst[...] = out[_ax(ndim, axis, slice(g, g + n))]
        return (t1 - t0, time.perf_counter() - t1, 0.0)

    # overlapped stitch: ghost slabs fill on a thread while the main
    # thread advects the whole local block (its first/last g layers wrap
    # locally and are wrong — the boundary pencils recompute them).
    sshape = list(cur.shape)
    sshape[axis] = 3 * g
    slab_l = state.scratch(("slab_l", axis), tuple(sshape), cur.dtype)
    slab_r = state.scratch(("slab_r", axis), tuple(sshape), cur.dtype)
    halo = {"seconds": 0.0}

    def fill_halo() -> None:
        t0 = time.perf_counter()
        slab_l[_ax(ndim, axis, slice(0, g))] = \
            nbr_l[_ax(ndim, axis, slice(n_l - g, n_l))]
        slab_l[_ax(ndim, axis, slice(g, 3 * g))] = \
            cur[_ax(ndim, axis, slice(0, 2 * g))]
        slab_r[_ax(ndim, axis, slice(0, 2 * g))] = \
            cur[_ax(ndim, axis, slice(n - 2 * g, n))]
        slab_r[_ax(ndim, axis, slice(2 * g, 3 * g))] = \
            nbr_r[_ax(ndim, axis, slice(0, g))]
        halo["seconds"] = time.perf_counter() - t0

    thread = threading.Thread(target=fill_halo, name="halo")
    thread.start()
    t0 = time.perf_counter()
    advect(cur, shift, axis, scheme=spec.scheme, bc="periodic",
           out=dst, arena=state.arena)
    interior = time.perf_counter() - t0
    thread.join()

    t0 = time.perf_counter()
    out_l = state.scratch(("slab_lo", axis), tuple(sshape), cur.dtype)
    out_r = state.scratch(("slab_ro", axis), tuple(sshape), cur.dtype)
    advect(slab_l, shift, axis, scheme=spec.scheme, bc="periodic",
           out=out_l, arena=state.arena)
    advect(slab_r, shift, axis, scheme=spec.scheme, bc="periodic",
           out=out_r, arena=state.arena)
    keep = _ax(ndim, axis, slice(g, 2 * g))
    dst[_ax(ndim, axis, slice(0, g))] = out_l[keep]
    dst[_ax(ndim, axis, slice(n - g, n))] = out_r[keep]
    return (halo["seconds"], interior, time.perf_counter() - t0)


# -- moments / guards -------------------------------------------------------


def _density(state: _WorkerState, role: int) -> None:
    """Write this block's density slab into the shared rho mesh.

    Velocity space is whole on every rank (§5.1.3), so the per-cell
    reduction is the serial one exactly — bitwise — on the block's cells.
    """
    grid = state.spec.grid
    blk = state.block(state.spec.rank, role)
    rho = state.mesh(state.spec.rho_name, grid.nx, np.float64)
    own = tuple(slice(lo, hi) for lo, hi in state.spec.own_bounds)
    vel_axes = tuple(range(grid.dim, 2 * grid.dim))
    rho[own] = blk.sum(axis=vel_axes, dtype=np.float64) * grid.cell_volume_u


def _reduce(state: _WorkerState, role: int) -> dict:
    """Partial sums for the conserved-quantity ledger (mass, kinetic)."""
    grid = state.spec.grid
    blk = state.block(state.spec.rank, role)
    ke = []
    for d in range(grid.dim):
        u = grid.u_center_broadcast(d).astype(np.float64)
        ke.append(float((blk * u**2).sum(dtype=np.float64)))
    return {"mass": float(blk.sum(dtype=np.float64)), "ke": ke}


def _stats(state: _WorkerState, role: int) -> tuple:
    """(non-finite count, min) of the block — exact under aggregation."""
    blk = state.block(state.spec.rank, role)
    n_bad = int(blk.size - np.count_nonzero(np.isfinite(blk)))
    return (n_bad, float(blk.min()))


# -- 2-D pencil FFT passes --------------------------------------------------
#
# Worker (i, j) on the p1 x p2 pencil grid owns x-pencil i and y-pencil j.
# Each pass is a batch of independent 1-D transforms on its slab of the
# shared staging buffers; the parent barriers between passes (it collects
# every reply before issuing the next), which is the transpose.


def _fft_roles(state: _WorkerState) -> tuple:
    fft = state.spec.fft
    p1, p2 = fft["p1"], fft["p2"]
    return p1, p2, state.spec.rank // p2, state.spec.rank % p2


def _fft_views(state: _WorkerState) -> tuple:
    fft = state.spec.fft
    n0, n1, n2 = state.spec.grid.nx
    nzr = n2 // 2 + 1
    real = state.mesh(fft["names"][0], (n0, n1, n2), np.float64)
    spec0 = state.mesh(fft["names"][1], (n0, n1, nzr), np.complex128)
    spec1 = state.mesh(fft["names"][2], (n0, n1, nzr), np.complex128)
    return real, spec0, spec1


def _rfft(x, axis):
    if _fft_lib is not None:
        return _fft_lib.rfft(x, axis=axis)
    return np.fft.rfft(x, axis=axis)


def _cfft(x, axis, inverse: bool):
    if _fft_lib is not None:
        return _fft_lib.ifft(x, axis=axis) if inverse \
            else _fft_lib.fft(x, axis=axis)
    return np.fft.ifft(x, axis=axis) if inverse else np.fft.fft(x, axis=axis)


def _irfft(x, n, axis):
    if _fft_lib is not None:
        return _fft_lib.irfft(x, n=n, axis=axis)
    return np.fft.irfft(x, n=n, axis=axis)


def _fft_pass(state: _WorkerState, which: str) -> None:
    """One pass of the staged 3-D transform (see module docstring).

    Forward: rfft(z) -> fft(x) -> fft(y); inverse: ifft(x) -> ifft(y) ->
    irfft(z) — the exact separable order of ``SpectralBackend.irfftn``.
    """
    p1, p2, i, j = _fft_roles(state)
    real, spec0, spec1 = _fft_views(state)
    n0, n1, n2 = state.spec.grid.nx
    nzr = n2 // 2 + 1
    x_p1 = pencil_slices(n0, p1)
    x_p2 = pencil_slices(n0, p2)
    y_p2 = pencil_slices(n1, p2)
    zk_p1 = pencil_slices(nzr, p1)

    if which == "fwd0":
        if i < len(x_p1) and j < len(y_p2):
            sl = (x_p1[i], y_p2[j], slice(None))
            spec0[sl] = _rfft(real[sl], axis=2)
    elif which == "fwd1":
        if i < len(zk_p1) and j < len(y_p2):
            sl = (slice(None), y_p2[j], zk_p1[i])
            spec1[sl] = _cfft(spec0[sl], axis=0, inverse=False)
    elif which == "fwd2":
        if i < len(zk_p1) and j < len(x_p2):
            sl = (x_p2[j], slice(None), zk_p1[i])
            spec0[sl] = _cfft(spec1[sl], axis=1, inverse=False)
    elif which == "inv0":
        if i < len(zk_p1) and j < len(y_p2):
            sl = (slice(None), y_p2[j], zk_p1[i])
            spec1[sl] = _cfft(spec0[sl], axis=0, inverse=True)
    elif which == "inv1":
        if i < len(zk_p1) and j < len(x_p2):
            sl = (x_p2[j], slice(None), zk_p1[i])
            spec0[sl] = _cfft(spec1[sl], axis=1, inverse=True)
    elif which == "inv2":
        if i < len(x_p1) and j < len(y_p2):
            sl = (x_p1[i], y_p2[j], slice(None))
            real[sl] = _irfft(spec0[sl], n=n2, axis=2)
    else:  # pragma: no cover - protocol error
        raise ValueError(f"unknown fft pass {which!r}")


# -- main loop --------------------------------------------------------------


def worker_main(conn, spec: WorkerSpec) -> None:
    """Serve commands over ``conn`` until 'close' or EOF.

    Protocol: every command gets exactly one ``("ok", value)`` or
    ``("err", traceback)`` reply, except ``"call"`` (fire-and-forget —
    the chaos harness injects ``_kill_self`` through it, which never
    returns) and ``"close"``.
    """
    state = _WorkerState(spec)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            cmd = msg[0]
            if cmd == "close":
                break
            if cmd == "call":
                fn, args = msg[1], msg[2]
                try:
                    fn(*args)
                except Exception:  # pragma: no cover - injected faults
                    pass
                continue
            try:
                if cmd == "sweep":
                    value = _sweep(state, msg[1])
                elif cmd == "density":
                    value = _density(state, msg[1])
                elif cmd == "reduce":
                    value = _reduce(state, msg[1])
                elif cmd == "stats":
                    value = _stats(state, msg[1])
                elif cmd == "fft":
                    value = _fft_pass(state, msg[1])
                elif cmd == "ping":
                    value = {"rank": spec.rank, "fft_library": _FFT_LIBRARY}
                else:
                    raise ValueError(f"unknown command {cmd!r}")
                reply = ("ok", value)
            except Exception:
                reply = ("err", traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
    finally:
        state.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown
            pass
