"""Parallel runtime: decomposition, vMPI, ghost exchange, pencil FFT —
and the real-transport :class:`~repro.parallel.domain.DomainEngine`
(persistent shared-memory domain workers, overlapped halo exchange,
distributed mesh FFT — see ``docs/PARALLEL.md``)."""

from .decomposition import (
    GHOST_WIDTH,
    BlockDecomposition,
    DomainDecomposition,
    pencil_slices,
)
from .exchange import (
    decomposed_spatial_advect,
    decomposed_velocity_advect,
    exchange_ghosts,
    exchange_ghosts_full,
    required_ghost,
)
from .fft_decomp import PencilGrid, pencil_fft3d
from .particle_exchange import (
    decompose_particles,
    exchange_boundary_particles,
    migrate_particles,
    owner_of,
)
from .vmpi import CollectiveRecord, CommLog, MessageRecord, VirtualComm

__all__ = [
    "GHOST_WIDTH",
    "BlockDecomposition",
    "DomainDecomposition",
    "DomainEngine",
    "DomainSolverAdapter",
    "DomainWorkerError",
    "pencil_slices",
    "decomposed_spatial_advect",
    "decomposed_velocity_advect",
    "exchange_ghosts",
    "exchange_ghosts_full",
    "required_ghost",
    "PencilGrid",
    "decompose_particles",
    "exchange_boundary_particles",
    "migrate_particles",
    "owner_of",
    "pencil_fft3d",
    "CollectiveRecord",
    "CommLog",
    "MessageRecord",
    "VirtualComm",
    "multiprocess_spatial_advect",
]
from .localcluster import multiprocess_spatial_advect

#: Lazily exported: :mod:`.domain` imports :mod:`repro.perf.pencil`,
#: which itself imports :mod:`.decomposition` from this package — an
#: eager import here would re-enter perf.pencil mid-initialization.
_LAZY = ("DomainEngine", "DomainSolverAdapter", "DomainWorkerError")


def __getattr__(name: str):
    if name in _LAZY:
        from . import domain

        return getattr(domain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
