"""Virtual parallel runtime: decomposition, vMPI, ghost exchange, pencil FFT."""

from .decomposition import GHOST_WIDTH, DomainDecomposition, pencil_slices
from .exchange import (
    decomposed_spatial_advect,
    decomposed_velocity_advect,
    exchange_ghosts,
    required_ghost,
)
from .fft_decomp import PencilGrid, pencil_fft3d
from .particle_exchange import (
    decompose_particles,
    exchange_boundary_particles,
    migrate_particles,
    owner_of,
)
from .vmpi import CollectiveRecord, CommLog, MessageRecord, VirtualComm

__all__ = [
    "GHOST_WIDTH",
    "DomainDecomposition",
    "pencil_slices",
    "decomposed_spatial_advect",
    "decomposed_velocity_advect",
    "exchange_ghosts",
    "required_ghost",
    "PencilGrid",
    "decompose_particles",
    "exchange_boundary_particles",
    "migrate_particles",
    "owner_of",
    "pencil_fft3d",
    "CollectiveRecord",
    "CommLog",
    "MessageRecord",
    "VirtualComm",
    "multiprocess_spatial_advect",
]
from .localcluster import multiprocess_spatial_advect
