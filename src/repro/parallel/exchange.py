"""Ghost-cell exchange and the domain-decomposed Vlasov step.

Only the *spatial* advections communicate: the advected stencil reaches
into neighbor domains, so each rank receives ``ghost`` layers of f from
its two neighbors along the advected axis before advecting locally.  The
velocity advections and all velocity moments are rank-local by
construction (paper §5.1.3), and the tests assert the decomposed update
equals the single-domain one bit-for-bit.

Ghost width: the semi-Lagrangian flux at local interface ``i+1/2`` with
shift ``s`` (|s| <= cfl_max) touches cells within
``(width-1)/2 + floor(cfl_max) + 1`` of ``i``, and the leftmost interior
update needs the flux one interface outside — hence
:func:`required_ghost`.  Decomposition therefore caps the usable CFL at
the ghost width, the one restriction the unconditionally stable SL scheme
inherits in production (the paper steps at spatial CFL ~ 1).
"""

from __future__ import annotations

import numpy as np

from ..core.advection import SCHEMES, advect
from .decomposition import DomainDecomposition
from .vmpi import VirtualComm


def required_ghost(scheme: str, cfl_max: float = 1.0) -> int:
    """Ghost layers per side for a scheme at a given maximum CFL."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    spec = SCHEMES[scheme]
    width = max(spec.order, 5) if spec.use_mp else spec.order
    if cfl_max < 0.0:
        raise ValueError("cfl_max must be non-negative")
    return (width - 1) // 2 + int(np.floor(cfl_max)) + 2


def exchange_ghosts(
    blocks: list[np.ndarray],
    decomp: DomainDecomposition,
    axis: int,
    ghost: int,
    comm: VirtualComm,
) -> list[np.ndarray]:
    """Pad every local block with neighbor data along one spatial axis.

    Returns new arrays extended by ``ghost`` layers on each side of
    ``axis`` (periodic global topology).  Two messages per rank are
    logged (one per direction), each of the exact production size.
    """
    if comm.size != decomp.size or len(blocks) != decomp.size:
        raise ValueError("communicator/blocks do not match the decomposition")
    if ghost < 1:
        raise ValueError("ghost must be >= 1")
    nl = decomp.local_shape[axis]
    if ghost > nl:
        raise ValueError(
            f"ghost width {ghost} exceeds local extent {nl}; "
            "use fewer ranks or a larger mesh"
        )

    # send the rightmost `ghost` layers rightward (they become the
    # receiver's left ghost), and vice versa
    take_hi = [slice(None)] * blocks[0].ndim
    take_hi[axis] = slice(nl - ghost, nl)
    take_lo = [slice(None)] * blocks[0].ndim
    take_lo[axis] = slice(0, ghost)

    to_right = comm.sendrecv(
        [blk[tuple(take_hi)] for blk in blocks],
        dest_of=lambda r: decomp.neighbor(r, axis, +1),
        tag=f"ghost+{axis}",
    )
    to_left = comm.sendrecv(
        [blk[tuple(take_lo)] for blk in blocks],
        dest_of=lambda r: decomp.neighbor(r, axis, -1),
        tag=f"ghost-{axis}",
    )
    out = []
    for r, blk in enumerate(blocks):
        out.append(np.concatenate([to_right[r], blk, to_left[r]], axis=axis))
    return out


def exchange_ghosts_full(
    blocks: list[np.ndarray],
    decomp: DomainDecomposition,
    ghost: int,
    comm: VirtualComm,
) -> list[np.ndarray]:
    """Pad every block with neighbor data along **all** spatial axes,
    corner and edge (diagonal-neighbor) ghosts included.

    :func:`exchange_ghosts` fills the face halos of a single axis and
    leaves the ``ghost x ghost`` corner regions of a multi-axis halo
    unfilled — fine for the dimensionally split sweeps (each sweep only
    reaches along its own axis), silently wrong for any 3-D stencil that
    reads diagonally (an unsplit stencil, a multi-axis limiter).  This
    performs the standard two-hop corner fill: exchange axis 0, then
    exchange the *padded* blocks along axis 1 (the slabs now carry the
    axis-0 ghosts, so corners arrive via the face neighbor), and so on —
    exactly how production halo exchanges avoid diagonal messages.  The
    logged messages therefore grow by the ghost layers of the already
    exchanged axes, which is the honest communication cost of a full
    halo.

    Returns new arrays extended by ``ghost`` layers on each side of every
    spatial axis (periodic global topology).
    """
    out = blocks
    for axis in range(decomp.dim):
        out = exchange_ghosts(out, decomp, axis, ghost, comm)
    return out


def decomposed_spatial_advect(
    blocks: list[np.ndarray],
    decomp: DomainDecomposition,
    shift,
    axis: int,
    scheme: str,
    comm: VirtualComm,
    cfl_max: float = 1.0,
) -> list[np.ndarray]:
    """One spatial advection of the decomposed distribution function.

    ``shift`` must be constant along all spatial axes (it varies only with
    the velocity coordinate for the Vlasov drift), so every rank uses the
    same array.  Equality with the global :func:`repro.core.advect` holds
    exactly as long as |shift| <= cfl_max.
    """
    sh = np.asarray(shift)
    if float(np.max(np.abs(sh))) > cfl_max + 1e-12:
        raise ValueError(
            f"shift exceeds cfl_max={cfl_max}; raise cfl_max (and ghost width)"
        )
    ghost = required_ghost(scheme, cfl_max)
    padded = exchange_ghosts(blocks, decomp, axis, ghost, comm)
    out = []
    for blk in padded:
        adv = advect(blk, shift, axis, scheme=scheme, bc="periodic")
        take = [slice(None)] * adv.ndim
        take[axis] = slice(ghost, ghost + decomp.local_shape[axis])
        out.append(np.ascontiguousarray(adv[tuple(take)]))
    return out


def decomposed_velocity_advect(
    blocks: list[np.ndarray],
    decomp: DomainDecomposition,
    shifts_by_rank: list[np.ndarray],
    axis: int,
    scheme: str,
) -> list[np.ndarray]:
    """One velocity advection: purely local, zero communication.

    ``shifts_by_rank`` holds each rank's local acceleration-based shift
    (it varies over the local spatial block).  The absence of any
    communicator argument is the point.
    """
    if len(blocks) != decomp.size or len(shifts_by_rank) != decomp.size:
        raise ValueError("need one block and one shift array per rank")
    return [
        advect(blk, sh, axis, scheme=scheme, bc="zero")
        for blk, sh in zip(blocks, shifts_by_rank)
    ]
