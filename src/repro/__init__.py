"""repro — hybrid 6-D Vlasov / N-body cosmological simulation library.

A from-scratch Python reproduction of the system described in
Yoshikawa, Tanaka & Yoshida, "A 400 Trillion-Grid Vlasov Simulation on
Fugaku Supercomputer" (SC '21): the SL-MPP5 six-dimensional Vlasov solver
for cosmic relic neutrinos, the TreePM N-body solver for cold dark matter,
their self-consistent hybrid coupling, and the performance machinery
(SIMD/LAT kernels, domain decomposition, Fugaku machine model) that the
paper's evaluation section measures.

Quick start::

    from repro.core import PhaseSpaceGrid, PlasmaVlasovPoisson
    grid = PhaseSpaceGrid(nx=(64,), nu=(128,), box_size=4*3.14159, v_max=6.0)
    vp = PlasmaVlasovPoisson(grid)
    ...

See README.md and the examples/ directory.
"""

__version__ = "1.0.0"

from . import constants, units

__all__ = ["constants", "units", "__version__"]
