"""Scaling experiments: regenerate Tables 3-4 and Figure 7.

Runs the machine cost model over the Table 2 run matrix exactly the way
the paper runs its measurements: per-step elapsed times decomposed into
Vlasov / tree / PM parts, weak-scaling efficiencies along the matched
per-process-load sequence S2 -> M16 -> L128 -> H1024, and strong-scaling
efficiencies within each run group.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.costmodel import StepBreakdown, predict_step
from .runs import TABLE2, RunConfig, by_id, group_runs

#: The paper's weak-scaling sequence: identical per-node work.
WEAK_SEQUENCE = ("S2", "M16", "L128", "H1024")

PARTS = ("total", "vlasov", "tree", "pm")

#: Paper Table 3, for side-by-side reporting.
PAPER_TABLE3 = {
    "S2-M16": {"total": 96.0, "vlasov": 99.0, "tree": 88.4, "pm": 79.5},
    "S2-L128": {"total": 91.1, "vlasov": 99.2, "tree": 76.8, "pm": 48.7},
    "S2-H1024": {"total": 82.3, "vlasov": 94.4, "tree": 82.0, "pm": 17.1},
}

#: Paper Table 4.
PAPER_TABLE4 = {
    "S": {"total": 87.7, "vlasov": 87.5, "tree": 90.9, "pm": 72.9},
    "M": {"total": 93.3, "vlasov": 93.9, "tree": 97.1, "pm": 60.6},
    "L": {"total": 91.1, "vlasov": 99.6, "tree": 85.7, "pm": 36.2},
    "H": {"total": 82.4, "vlasov": 93.0, "tree": 77.5, "pm": 34.1},
}


def _part(b: StepBreakdown, part: str) -> float:
    return getattr(b, part) if part != "total" else b.total


@dataclass(frozen=True)
class EfficiencyRow:
    """One efficiency entry (percent) for all parts."""

    label: str
    total: float
    vlasov: float
    tree: float
    pm: float

    def as_dict(self) -> dict[str, float]:
        """Part -> percent."""
        return {
            "total": self.total,
            "vlasov": self.vlasov,
            "tree": self.tree,
            "pm": self.pm,
        }


def weak_scaling_table() -> list[EfficiencyRow]:
    """Table 3: weak efficiencies S2 -> {M16, L128, H1024}.

    Weak efficiency of a matched-load pair is T_ref / T (per-step times;
    the per-node workload is identical along the sequence).
    """
    ref = predict_step(by_id(WEAK_SEQUENCE[0]))
    rows = []
    for rid in WEAK_SEQUENCE[1:]:
        b = predict_step(by_id(rid))
        rows.append(
            EfficiencyRow(
                label=f"{WEAK_SEQUENCE[0]}-{rid}",
                **{
                    part: 100.0 * _part(ref, part) / _part(b, part)
                    for part in PARTS
                },
            )
        )
    return rows


def strong_scaling_table() -> list[EfficiencyRow]:
    """Table 4: strong efficiencies across each of the S, M, L, H groups.

    E = (T_small * N_small) / (T_large * N_large) between the smallest and
    largest runs of a group.
    """
    rows = []
    for letter in "SMLH":
        runs = group_runs(letter)
        r0, r1 = runs[0], runs[-1]
        b0, b1 = predict_step(r0), predict_step(r1)
        scale = r1.n_node / r0.n_node
        rows.append(
            EfficiencyRow(
                label=letter,
                **{
                    part: 100.0 * _part(b0, part) / (_part(b1, part) * scale)
                    for part in PARTS
                },
            )
        )
    return rows


def figure7_series() -> dict[str, list[dict]]:
    """Figure 7's data: per-step part times vs node count.

    Returns ``{"weak": [...], "strong": [...]}`` where each entry carries
    the run id, node count, and the per-part seconds — the series the
    paper plots (left: the matched-load weak sequence, right: all runs of
    every group).
    """
    weak = []
    for rid in WEAK_SEQUENCE:
        run = by_id(rid)
        b = predict_step(run)
        weak.append(
            {
                "run": rid,
                "nodes": run.n_node,
                "vlasov": b.vlasov,
                "tree": b.tree,
                "pm": b.pm,
                "total": b.total,
            }
        )
    strong = []
    for run in TABLE2:
        if run.group == "U":
            continue
        b = predict_step(run)
        strong.append(
            {
                "run": run.run_id,
                "group": run.group,
                "nodes": run.n_node,
                "vlasov": b.vlasov,
                "tree": b.tree,
                "pm": b.pm,
                "total": b.total,
            }
        )
    return {"weak": weak, "strong": strong}


def format_efficiency_table(
    rows: list[EfficiencyRow], paper: dict[str, dict[str, float]]
) -> str:
    """Render model-vs-paper efficiencies as a text table."""
    lines = [
        f"{'':>10} | {'total':>13} | {'Vlasov':>13} | {'tree':>13} | {'PM':>13}",
        f"{'':>10} | {'model  paper':>13} | {'model  paper':>13} | "
        f"{'model  paper':>13} | {'model  paper':>13}",
        "-" * 76,
    ]
    for row in rows:
        p = paper.get(row.label, {})
        cells = []
        for part in PARTS:
            model = row.as_dict()[part]
            pap = p.get(part)
            cells.append(
                f"{model:5.1f}% {pap:5.1f}%" if pap is not None else f"{model:5.1f}%   -  "
            )
        lines.append(f"{row.label:>10} | " + " | ".join(cells))
    return "\n".join(lines)


def run_config_table() -> str:
    """Render Table 2 (the run matrix) as text."""
    lines = [
        f"{'ID':>6} {'Nx':>6} {'Nu':>4} {'N_CDM':>7} {'nodes':>7} "
        f"{'decomposition':>15} {'p/node':>6} {'cells':>12}"
    ]
    for run in TABLE2:
        lines.append(
            f"{run.run_id:>6} {run.nx:>5}^3 {run.nu:>3} {run.n_cdm_side:>5}^3 "
            f"{run.n_node:>7} {str(run.n_proc):>15} {run.procs_per_node:>6} "
            f"{run.phase_space_cells:>12.3e}"
        )
    return "\n".join(lines)
