"""Memory-budget audit of the Table 2 runs.

The Vlasov method's defining constraint (paper §5.2): "the large amount
of memory required to configure mesh grids not only in the physical space
but also in the velocity space".  Each A64FX node carries 32 GB of HBM2;
the distribution function (float32), its ghost layers, flux buffers, the
PM slabs and the particles must all fit.  This module itemizes the
per-node footprint for any run configuration — and shows the largest runs
genuinely push against Fugaku's memory, as the paper says.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import a64fx
from ..parallel.exchange import required_ghost
from .runs import RunConfig

#: Bytes per N-body particle: position + velocity (float64) + mass/ids.
PARTICLE_STATE_BYTES = 56

#: Extra working fraction of f the advection engine holds concurrently.
#: The production kernel updates pencil-by-pencil in place, needing only
#: a flux sliver per pencil batch — not a full copy.  (The NumPy engine
#: in this repository is more memory-hungry; this models the paper's.)
F_WORKING_COPIES = 0.5

#: Ghost exchanges are streamed in chunks (the full 6-D ghost shell of
#: the largest runs would rival f itself); this caps the resident ghost
#: buffer per process and direction.
GHOST_BUFFER_CAP = 1 * 2**30


@dataclass(frozen=True)
class MemoryBudget:
    """Per-node memory footprint of one run [bytes]."""

    f_bytes: int
    ghost_bytes: int
    working_bytes: int
    particle_bytes: int
    pm_bytes: int

    @property
    def total(self) -> int:
        """Everything."""
        return (
            self.f_bytes
            + self.ghost_bytes
            + self.working_bytes
            + self.particle_bytes
            + self.pm_bytes
        )

    @property
    def node_capacity(self) -> int:
        """32 GB of HBM2 per node."""
        return a64fx.MEMORY_PER_CMG * a64fx.CMGS_PER_NODE

    @property
    def fits(self) -> bool:
        """Whether the footprint fits the node."""
        return self.total <= self.node_capacity

    @property
    def utilization(self) -> float:
        """Fraction of node memory used."""
        return self.total / self.node_capacity


def node_memory_budget(run: RunConfig, scheme: str = "slmpp5") -> MemoryBudget:
    """Itemized per-node memory for a Table 2 configuration."""
    procs = run.procs_per_node
    nu3 = run.nu**3
    lx, ly, lz = run.local_nx

    f_bytes = run.local_cells * 4 * procs

    # one axis is exchanged at a time; both faces double-buffered, with
    # chunked streaming capping the resident buffer
    ghost = required_ghost(scheme, 1.0)
    max_face = max(ly * lz, lx * lz, lx * ly)
    per_dir = min(ghost * max_face * nu3 * 4, GHOST_BUFFER_CAP)
    ghost_bytes = 2 * 2 * per_dir * procs  # 2 faces x double buffer

    working_bytes = int(F_WORKING_COPIES * run.local_cells * 4) * procs

    particle_bytes = int(run.local_particles * PARTICLE_STATE_BYTES) * procs

    pm_local = run.n_pm_side**3 / run.n_procs
    pm_bytes = int(pm_local * 8 * 4) * procs  # density + 3 force comps, f64

    return MemoryBudget(
        f_bytes=f_bytes,
        ghost_bytes=ghost_bytes,
        working_bytes=working_bytes,
        particle_bytes=particle_bytes,
        pm_bytes=pm_bytes,
    )


def memory_report(runs) -> str:
    """Text table of per-node memory across configurations."""
    lines = [
        f"{'run':>7} {'f':>8} {'ghost':>8} {'work':>8} {'parts':>8} "
        f"{'pm':>8} {'total':>8} {'of 32GB':>8}"
    ]
    gib = float(2**30)
    for run in runs:
        b = node_memory_budget(run)
        lines.append(
            f"{run.run_id:>7} {b.f_bytes / gib:>7.2f}G {b.ghost_bytes / gib:>7.2f}G "
            f"{b.working_bytes / gib:>7.2f}G {b.particle_bytes / gib:>7.2f}G "
            f"{b.pm_bytes / gib:>7.2f}G {b.total / gib:>7.2f}G "
            f"{b.utilization * 100:>7.1f}%"
        )
    return "\n".join(lines)


def global_f_bytes(run: RunConfig) -> int:
    """Total storage of the distribution function across the system —
    the headline number (U1024: 4e14 cells x 4 B = 1.6 PB)."""
    return run.phase_space_cells * 4
