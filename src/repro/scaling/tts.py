"""Time-to-solution analysis (paper §7.2).

Two ingredients:

1. the *equivalence algebra* between an N-body neutrino simulation and a
   Vlasov one — Eqs. (9)-(10): smoothing an N-body result over N_s
   particles trades shot noise (S/N = sqrt(N_s)) against effective spatial
   resolution DL = N_s^(1/3) L / N_nu^(1/3).  This fixes which Vlasov grid
   a given particle count is "equivalent" to;

2. the end-to-end time model for the two full-system runs H1024 and U1024
   (z = 10 -> 0, box 1200 h^-1 Mpc), compared against the TianNu
   reference (52 hours on Tianhe-2 for 6912^3 CDM + 8 x 6912^3 neutrino
   particles).

The paper measured 1.92 h (H1024: 6183 s execution + 733 s I/O) and
5.86 h (U1024: 20342 s + 782 s), i.e. 27x and 8.9x faster than TianNu at
matched effective resolution.  We anchor the model's absolute scale at
the H1024 execution time (one calibration point) and *predict* the
U1024/H1024 ratio — per-step cost scales with the phase-space volume per
CMG, and the CFL-limited step count scales with the spatial resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.costmodel import predict_io_time, predict_step
from .runs import by_id

#: TianNu reference (paper §4, §7.2).
TIANNU_WALLCLOCK_HOURS = 52.0
TIANNU_NEUTRINO_PARTICLES = 8 * 6912**3
TIANNU_PARTICLES_PER_AXIS = 13824  # (8 x 6912^3)^(1/3)

#: Paper-measured end-to-end numbers [s].
PAPER_H1024_EXEC = 6183.0
PAPER_H1024_IO = 733.0
PAPER_U1024_EXEC = 20342.0
PAPER_U1024_IO = 782.0


def effective_resolution_cells(signal_to_noise: float, n_particles_per_axis: int = TIANNU_PARTICLES_PER_AXIS) -> float:
    """Eq. (9): box-relative effective resolution L / DL of a smoothed
    N-body result at the requested S/N.

    DL = N_s^(1/3) L / N_nu^(1/3) with N_s = (S/N)^2, so
    L / DL = N_per_axis / (S/N)^(2/3).
    """
    if signal_to_noise <= 0.0:
        raise ValueError("S/N must be positive")
    return n_particles_per_axis / signal_to_noise ** (2.0 / 3.0)


def equivalent_run_for_sn(signal_to_noise: float) -> str:
    """Which run group matches TianNu's effective resolution at given S/N.

    Paper: S/N = 100 -> ~L/640 ~ the H group (768^3); S/N = 50 ->
    ~L/1018 ~ the U group (1152^3).
    """
    cells = effective_resolution_cells(signal_to_noise)
    return "H1024" if abs(cells - 768) < abs(cells - 1152) else "U1024"


@dataclass(frozen=True)
class TimeToSolution:
    """End-to-end prediction for one full-system run."""

    run_id: str
    n_steps: int
    step_seconds: float
    exec_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        """Execution + I/O."""
        return self.exec_seconds + self.io_seconds

    @property
    def total_hours(self) -> float:
        """In hours."""
        return self.total_seconds / 3600.0

    @property
    def speedup_vs_tiannu(self) -> float:
        """Ratio of TianNu's 52 h to this run's wall-clock."""
        return TIANNU_WALLCLOCK_HOURS / self.total_hours


def model_end_to_end(anchor_exec_seconds: float = PAPER_H1024_EXEC) -> dict[str, TimeToSolution]:
    """Predict H1024 and U1024 end-to-end times.

    The H1024 step count is fixed by anchoring the modeled per-step time
    to the paper's measured execution time (the paper does not publish
    step counts); U1024's count then scales with the spatial resolution
    (the CFL-limited time step shrinks with the cell size), making the
    U1024 prediction — and both TianNu speedups — genuine model outputs.
    """
    h = by_id("H1024")
    u = by_id("U1024")
    step_h = predict_step(h).total
    step_u = predict_step(u).total

    n_steps_h = int(round(anchor_exec_seconds / step_h))
    n_steps_u = int(round(n_steps_h * (u.nx / h.nx)))

    out = {}
    for run, n_steps, step in ((h, n_steps_h, step_h), (u, n_steps_u, step_u)):
        out[run.run_id] = TimeToSolution(
            run_id=run.run_id,
            n_steps=n_steps,
            step_seconds=step,
            exec_seconds=n_steps * step,
            io_seconds=predict_io_time(run),
        )
    return out


def format_tts_report() -> str:
    """Model-vs-paper time-to-solution summary."""
    tts = model_end_to_end()
    paper = {
        "H1024": (PAPER_H1024_EXEC, PAPER_H1024_IO, 27.0),
        "U1024": (PAPER_U1024_EXEC, PAPER_U1024_IO, 8.9),
    }
    lines = [
        "Time-to-solution vs TianNu (52 h, 8x6912^3 neutrino particles)",
        f"{'run':>7} {'steps':>6} {'s/step':>7} {'exec[s]':>9} {'io[s]':>7} "
        f"{'hours':>6} {'speedup':>8} | paper exec/io/speedup",
    ]
    for rid, t in tts.items():
        pe, pi, ps = paper[rid]
        lines.append(
            f"{rid:>7} {t.n_steps:>6} {t.step_seconds:>7.2f} "
            f"{t.exec_seconds:>9.0f} {t.io_seconds:>7.0f} "
            f"{t.total_hours:>6.2f} {t.speedup_vs_tiannu:>7.1f}x | "
            f"{pe:.0f}s / {pi:.0f}s / {ps:.1f}x"
        )
    lines.append("")
    lines.append("Eq. (9) effective-resolution equivalence:")
    for sn in (100.0, 50.0):
        cells = effective_resolution_cells(sn)
        lines.append(
            f"  S/N = {sn:5.0f}: TianNu ~ L/{cells:.0f} "
            f"-> equivalent to run group {equivalent_run_for_sn(sn)}"
        )
    return "\n".join(lines)
