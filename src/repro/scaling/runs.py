"""The run matrix of the paper's Table 2.

Naming: S/M/L/H/U encode the Vlasov spatial resolution (96^3, 192^3,
384^3, 768^3, 1152^3); the number suffix counts nodes in units of 144.
N_u = 64^3 everywhere; N_CDM = 9^3 N_x except U1024 (which keeps H's
6912^3).  ``n_proc`` is the (n_x, n_y, n_z) domain decomposition and
``procs_per_node`` distinguishes the 2-CMG-per-process runs from the
1-CMG-per-process (4 process/node) H group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RunConfig:
    """One row of Table 2."""

    run_id: str
    nx: int  # Vlasov spatial grid per axis
    nu: int  # Vlasov velocity grid per axis
    n_cdm_side: int  # CDM particles per axis
    n_node: int
    n_proc: tuple[int, int, int]
    procs_per_node: int

    def __post_init__(self) -> None:
        if self.n_procs != self.n_node * self.procs_per_node:
            raise ValueError(
                f"{self.run_id}: decomposition {self.n_proc} gives "
                f"{self.n_procs} processes but {self.n_node} nodes x "
                f"{self.procs_per_node} proc/node = "
                f"{self.n_node * self.procs_per_node}"
            )
        for n, p in zip((self.nx,) * 3, self.n_proc):
            if n % p:
                raise ValueError(f"{self.run_id}: {n} not divisible by {p}")

    # -- derived sizes ----------------------------------------------------

    @property
    def n_procs(self) -> int:
        """Total MPI processes."""
        return int(np.prod(self.n_proc))

    @property
    def cmg_per_proc(self) -> int:
        """CMGs available to each process (4 CMGs per node)."""
        return 4 // self.procs_per_node

    @property
    def phase_space_cells(self) -> int:
        """Total Vlasov cells ('grids'): N_x^3 * N_u^3."""
        return self.nx**3 * self.nu**3

    @property
    def local_nx(self) -> tuple[int, int, int]:
        """Local spatial extent per process."""
        return tuple(self.nx // p for p in self.n_proc)

    @property
    def local_cells(self) -> int:
        """Vlasov cells per process."""
        return int(np.prod(self.local_nx)) * self.nu**3

    @property
    def n_cdm(self) -> int:
        """Total CDM particles."""
        return self.n_cdm_side**3

    @property
    def local_particles(self) -> float:
        """Mean CDM particles per process."""
        return self.n_cdm / self.n_procs

    @property
    def n_pm_side(self) -> int:
        """PM mesh per axis: the paper's N_PM = N_CDM / 3^3 rule."""
        return self.n_cdm_side // 3

    @property
    def fft_parallelism(self) -> int:
        """Processes the 2-D-decomposed FFT can actually use: n_x * n_y."""
        return self.n_proc[0] * self.n_proc[1]

    @property
    def group(self) -> str:
        """Run group letter."""
        return self.run_id[0]


#: Table 2, verbatim.
TABLE2: tuple[RunConfig, ...] = (
    RunConfig("S1", 96, 64, 864, 144, (12, 12, 2), 2),
    RunConfig("S2", 96, 64, 864, 288, (12, 12, 4), 2),
    RunConfig("S4", 96, 64, 864, 576, (12, 12, 8), 2),
    RunConfig("M8", 192, 64, 1728, 1152, (24, 24, 4), 2),
    RunConfig("M12", 192, 64, 1728, 1728, (24, 24, 6), 2),
    RunConfig("M16", 192, 64, 1728, 2304, (24, 24, 8), 2),
    RunConfig("M24", 192, 64, 1728, 3456, (24, 24, 12), 2),
    RunConfig("M32", 192, 64, 1728, 4608, (24, 24, 16), 2),
    RunConfig("L48", 384, 64, 3456, 6912, (48, 48, 6), 2),
    RunConfig("L64", 384, 64, 3456, 9216, (48, 48, 8), 2),
    RunConfig("L96", 384, 64, 3456, 13824, (48, 48, 12), 2),
    RunConfig("L128", 384, 64, 3456, 18432, (48, 48, 16), 2),
    RunConfig("L256", 384, 64, 3456, 36864, (48, 48, 32), 2),
    RunConfig("H384", 768, 64, 6912, 55296, (96, 96, 24), 4),
    RunConfig("H512", 768, 64, 6912, 73728, (96, 96, 32), 4),
    RunConfig("H768", 768, 64, 6912, 110592, (96, 96, 48), 4),
    RunConfig("H1024", 768, 64, 6912, 147456, (96, 96, 64), 4),
    RunConfig("U1024", 1152, 64, 6912, 147456, (48, 48, 128), 2),
)


def by_id(run_id: str) -> RunConfig:
    """Look a run up by its Table 2 name."""
    for run in TABLE2:
        if run.run_id == run_id:
            return run
    raise KeyError(f"unknown run id {run_id!r}")


def group_runs(letter: str) -> list[RunConfig]:
    """All runs of one group (S/M/L/H/U), in node order."""
    runs = [r for r in TABLE2 if r.group == letter]
    if not runs:
        raise KeyError(f"no runs in group {letter!r}")
    return sorted(runs, key=lambda r: r.n_node)
