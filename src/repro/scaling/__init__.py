"""Scaling experiments and time-to-solution analysis (paper §7)."""

from .experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    EfficiencyRow,
    figure7_series,
    format_efficiency_table,
    run_config_table,
    strong_scaling_table,
    weak_scaling_table,
)
from .runs import TABLE2, RunConfig, by_id, group_runs
from .tts import (
    TimeToSolution,
    effective_resolution_cells,
    equivalent_run_for_sn,
    format_tts_report,
    model_end_to_end,
)

__all__ = [
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "EfficiencyRow",
    "figure7_series",
    "format_efficiency_table",
    "run_config_table",
    "strong_scaling_table",
    "weak_scaling_table",
    "TABLE2",
    "RunConfig",
    "by_id",
    "group_runs",
    "TimeToSolution",
    "effective_resolution_cells",
    "equivalent_run_for_sn",
    "format_tts_report",
    "model_end_to_end",
]
