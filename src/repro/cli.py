"""Command-line interface: ``python -m repro <command>``.

Small operational surface over the library — the things a user wants
without writing a script:

* ``info``     — version, subsystem inventory, paper reference;
* ``landau``   — run the Landau-damping validation and report the rate;
* ``hybrid``   — run a mini cosmological hybrid simulation;
* ``run``      — start a production run from a config file;
* ``resume``   — continue an interrupted run from its run directory;
* ``campaign`` — run/resume/watch a parameter-sweep campaign from a
  spec, or start a ``worker`` process for its job queue;
* ``verify``   — check the integrity of a run's checkpoints;
* ``serve``    — list/query a run's stored diagnostics products;
* ``scaling``  — print Tables 2-4 + the time-to-solution report;
* ``memory``   — per-node memory audit of the Table 2 runs;
* ``schemes``  — list the advection schemes and their properties.

``run``/``resume`` return the runtime subsystem's exit-code contract
(0 complete, 75 resumable, 70 guard abort — see ``docs/RUNTIME.md``);
both accept ``--faults`` (inline JSON or a file path) to drive a chaos
drill against a real run.  ``campaign`` rolls the same contract up over
a whole sweep (0 all done, 70 any guard abort, else 75 — resume until
0; see ``docs/CAMPAIGN.md``).
"""

from __future__ import annotations

import argparse


def cmd_info(_: argparse.Namespace) -> int:
    """Print library and paper information."""
    import repro
    from repro.core.advection import SCHEMES

    print(f"repro {repro.__version__}")
    print(
        "Reproduction of: Yoshikawa, Tanaka & Yoshida, 'A 400 Trillion-Grid "
        "Vlasov\nSimulation on Fugaku Supercomputer' (SC '21)."
    )
    print(f"advection schemes: {', '.join(sorted(SCHEMES))}")
    print("subsystems: core gravity nbody cosmology ic parallel simd machine")
    print("            scaling io analysis diagnostics plasma runtime campaign")
    print("see README.md / DESIGN.md / EXPERIMENTS.md")
    return 0


def cmd_landau(args: argparse.Namespace) -> int:
    """Landau-damping validation (the quickstart, parameterized)."""
    import numpy as np
    from scipy.signal import argrelmax

    from repro.core import PhaseSpaceGrid, PlasmaVlasovPoisson

    grid = PhaseSpaceGrid(
        nx=(args.nx,), nu=(args.nu,), box_size=2 * np.pi / args.k,
        v_max=6.0, dtype=np.float64,
    )
    vp = PlasmaVlasovPoisson(grid, scheme=args.scheme)
    x = grid.x_centers(0)[:, None]
    v = grid.u_centers(0)[None, :]
    vp.f = (1 + 0.01 * np.cos(args.k * x)) * np.exp(-v**2 / 2) / np.sqrt(2 * np.pi)
    times, energies = [], []
    for _ in range(args.steps):
        vp.step(0.1)
        times.append(vp.time)
        energies.append(vp.field_energy())
    t, e = np.array(times), np.array(energies)
    log_amp = 0.5 * np.log(e)
    peaks = argrelmax(log_amp)[0]
    peaks = peaks[(t[peaks] > 2) & (t[peaks] < 15)]
    if len(peaks) < 3:
        print("not enough oscillation peaks to fit — increase --steps")
        return 1
    gamma = np.polyfit(t[peaks], log_amp[peaks], 1)[0]
    print(f"scheme={args.scheme} k={args.k}: gamma = {gamma:+.4f} "
          "(theory -0.1533 at k=0.5)")
    return 0


def cmd_hybrid(args: argparse.Namespace) -> int:
    """Mini cosmological hybrid run (the packaged demo).

    The workload lives in :func:`repro.runtime.scenarios.hybrid_demo`,
    so this works however the package is installed — no examples tree,
    no ``sys.argv`` mutation, no ``exec``.
    """
    from repro.runtime.scenarios import hybrid_demo

    return hybrid_demo([
        "--nx", str(args.nx), "--nu", str(args.nu),
        "--steps", str(args.steps), "--m-nu", str(args.m_nu),
    ])


def cmd_run(args: argparse.Namespace) -> int:
    """Start (or re-enter) a production run from a config file."""
    from repro.runtime import FaultPlan, RunConfig, SimulationRunner

    config = RunConfig.load(args.config)
    run_dir = args.run_dir if args.run_dir else f"{config.name}.run"
    runner = SimulationRunner.create(config, run_dir)
    return runner.run(max_steps=args.max_steps,
                      fault_plan=FaultPlan.from_spec(args.faults))


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted run from its run directory."""
    from repro.runtime import FaultPlan, SimulationRunner

    runner = SimulationRunner.resume(args.run_dir)
    return runner.run(max_steps=args.max_steps,
                      fault_plan=FaultPlan.from_spec(args.faults))


def _campaign_status(campaign, watch: bool) -> int:
    """Print the aggregate table (once, or refreshed until interrupted).

    The watch loop reloads the manifest each tick, so it tracks a
    campaign another process is executing — attempts and lease-driven
    retries show up live.
    """
    import time

    from repro.campaign import Campaign, format_table

    if not watch:
        print(format_table(campaign.aggregate()))
        return 0
    try:
        while True:
            campaign = Campaign.resume(campaign.campaign_dir)
            table = format_table(campaign.aggregate())
            print(f"\x1b[2J\x1b[H{campaign.config.name} "
                  f"[{campaign.manifest.status}]")
            print(table, flush=True)
            if campaign.manifest.status in ("complete", "failed"):
                return 0
            time.sleep(2.0)
    except KeyboardInterrupt:
        return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run, resume, inspect, or serve a parameter-sweep campaign.

    ``repro campaign <spec>`` materializes and runs a sweep (re-running
    an existing directory naturally resumes it); ``repro campaign
    resume <dir>`` re-enters a campaign from its manifest alone;
    ``repro campaign status <dir>`` prints the aggregate table without
    executing anything (``--watch`` keeps refreshing it); ``repro
    campaign worker <dir>`` starts a queue worker that claims and
    executes jobs from the campaign's spool (the ``queue`` executor's
    substrate).
    """
    from repro.campaign import Campaign, CampaignConfig, format_table

    if args.target == "worker":
        if args.arg is None:
            print("campaign worker: campaign directory required")
            return 2
        from repro.campaign import run_worker

        executed = run_worker(args.arg, poll=args.poll, once=args.once,
                              worker_id=args.worker_id,
                              max_jobs=args.max_jobs)
        print(f"campaign worker: executed {executed} job(s)")
        return 0
    if args.target in ("resume", "status"):
        if args.arg is None:
            print(f"campaign {args.target}: campaign directory required")
            return 2
        campaign = Campaign.resume(args.arg)
        if args.target == "status":
            return _campaign_status(campaign, args.watch)
    else:
        config = CampaignConfig.load(args.target)
        if args.concurrency is not None:
            config.concurrency = args.concurrency
        if args.executor is not None:
            config.executor = args.executor
        campaign_dir = args.dir or args.arg or f"{config.name}.campaign"
        campaign = Campaign.create(config, campaign_dir)
    code = campaign.run(max_steps=args.max_steps,
                        supervise=not args.no_supervise)
    print(format_table(campaign.aggregate()))
    return code


def cmd_verify(args: argparse.Namespace) -> int:
    """Verify every checkpoint of a run directory against its checksums.

    Exits 0 when all checkpoints load and verify, 1 when any fails;
    ``--quarantine`` additionally renames failing files to ``*.corrupt``
    so the restart chain skips them without re-reading.
    """
    from pathlib import Path

    from repro.io.snapshot import quarantine, read_checkpoint

    ck_dir = Path(args.run_dir) / "checkpoints"
    if not ck_dir.is_dir():
        ck_dir = Path(args.run_dir)  # allow pointing at checkpoints/ itself
    paths = sorted(ck_dir.glob("ck_*.npz"))
    if not paths:
        print(f"verify: no checkpoints under {ck_dir}")
        return 1
    bad = 0
    for path in paths:
        try:
            _, _, _, header = read_checkpoint(path)
        except Exception as exc:
            bad += 1
            note = f"{type(exc).__name__}: {exc}"
            if args.quarantine:
                note += f" -> {quarantine(path).name}"
            print(f"FAIL  {path.name}  {note}")
            continue
        print(f"ok    {path.name}  step={header['step']}")
    print(f"verify: {len(paths) - bad}/{len(paths)} checkpoints valid")
    return 1 if bad else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a run's stored diagnostics products.

    ``repro serve list <run_dir>`` tabulates the stored snapshots;
    ``repro serve query <run_dir> --product ...`` computes (or answers
    from the content-addressed cache) one derived product.  Exit 0 on
    success, 1 when the store is missing or the query cannot be
    answered.
    """
    import json as _json
    import time

    import numpy as np

    from repro.serve import QueryEngine

    try:
        engine = QueryEngine(args.run_dir, use_cache=not args.no_cache)
    except FileNotFoundError as exc:
        print(f"serve: {exc}")
        return 1

    if args.action == "list":
        rows = engine.describe()
        if not rows:
            print(f"serve: no snapshots under {engine.store_dir}")
            return 1
        if args.json:
            print(_json.dumps(rows, indent=2))
            return 0
        for row in rows:
            coord = ", ".join(f"{k}={v:.4g}" for k, v in row["coord"].items())
            print(f"{row['snapshot']}  step={row['step']:<6} {coord:<14} "
                  f"fields: {', '.join(row['fields'])}")
        return 0

    t0 = time.perf_counter()
    try:
        result = engine.query(
            args.product, step=args.step, field=args.field,
            field_b=args.field_b, n_bins=args.n_bins,
            axis=args.axis, index=args.index,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"serve: {exc}")
        return 1
    elapsed = time.perf_counter() - t0
    if args.json:
        payload = {
            k: (v.tolist() if isinstance(v, np.ndarray) else
                float(v) if isinstance(v, np.floating) else v)
            for k, v in result.items()
        }
        payload["seconds"] = elapsed
        print(_json.dumps(payload, indent=2))
        return 0
    origin = "cache" if result["cached"] else "computed"
    print(f"{args.product} @ {result['snapshot']}  [{origin}, {elapsed:.3f}s]")
    for name, value in result.items():
        if name in ("cached", "snapshot"):
            continue
        if isinstance(value, np.ndarray):
            flat = np.asarray(value)
            head = ", ".join(f"{v:.6g}" for v in flat.ravel()[:8])
            tail = ", ..." if flat.size > 8 else ""
            print(f"  {name}: shape={flat.shape}  [{head}{tail}]")
        else:
            print(f"  {name}: {float(value):.6g}")
    return 0


def cmd_scaling(_: argparse.Namespace) -> int:
    """Tables 2-4 and the time-to-solution report."""
    from repro.scaling import (
        PAPER_TABLE3,
        PAPER_TABLE4,
        format_efficiency_table,
        format_tts_report,
        run_config_table,
        strong_scaling_table,
        weak_scaling_table,
    )

    print(run_config_table())
    print("\nTable 3 (weak scaling, model vs paper):")
    print(format_efficiency_table(weak_scaling_table(), PAPER_TABLE3))
    print("\nTable 4 (strong scaling, model vs paper):")
    print(format_efficiency_table(strong_scaling_table(), PAPER_TABLE4))
    print()
    print(format_tts_report())
    return 0


def cmd_memory(_: argparse.Namespace) -> int:
    """Per-node memory audit of every Table 2 run."""
    from repro.scaling.memory import global_f_bytes, memory_report
    from repro.scaling.runs import TABLE2, by_id

    print(memory_report(TABLE2))
    print(
        f"\nU1024 distribution function, system-wide: "
        f"{global_f_bytes(by_id('U1024')) / 1e15:.2f} PB"
    )
    return 0


def cmd_schemes(_: argparse.Namespace) -> int:
    """List the advection schemes and their guarantees."""
    from repro.core.advection import SCHEMES

    print(f"{'name':>10} {'order':>5} {'MP':>4} {'positive':>8} {'type':>10}")
    for name, spec in sorted(SCHEMES.items()):
        kind = "weno" if spec.use_weno else "pfc" if spec.use_pfc else "linear"
        print(
            f"{name:>10} {spec.order:>5} {'yes' if spec.use_mp else '-':>4} "
            f"{'yes' if spec.use_pos else '-':>8} {kind:>10}"
        )
    print("\nslmpp5 is the paper's production scheme.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="hybrid Vlasov/N-body simulation library"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("info", help="library and paper information")

    p = sub.add_parser("landau", help="Landau-damping validation")
    p.add_argument("--nx", type=int, default=64)
    p.add_argument("--nu", type=int, default=128)
    p.add_argument("--k", type=float, default=0.5)
    p.add_argument("--steps", type=int, default=160)
    p.add_argument("--scheme", default="slmpp5")

    p = sub.add_parser("hybrid", help="mini cosmological hybrid run")
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--nu", type=int, default=8)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--m-nu", type=float, default=0.4)

    p = sub.add_parser("run", help="production run from a config file")
    p.add_argument("config", help="RunConfig file (.json or .toml)")
    p.add_argument("--run-dir", default=None,
                   help="run directory (default: <config name>.run)")
    p.add_argument("--max-steps", type=int, default=None,
                   help="cap steps this invocation (exits resumable)")
    p.add_argument("--faults", default=None,
                   help="chaos drill: fault-plan JSON (inline or a path)")

    p = sub.add_parser("resume", help="continue an interrupted run")
    p.add_argument("run_dir", help="run directory holding run.json")
    p.add_argument("--max-steps", type=int, default=None,
                   help="cap steps this invocation (exits resumable)")
    p.add_argument("--faults", default=None,
                   help="chaos drill: fault-plan JSON (inline or a path)")

    p = sub.add_parser("campaign", help="parameter-sweep campaign over runs")
    p.add_argument("target",
                   help="campaign spec (.json/.toml), or "
                        "'resume'/'status'/'worker'")
    p.add_argument("arg", nargs="?", default=None,
                   help="campaign directory (for resume/status/worker)")
    p.add_argument("--dir", default=None,
                   help="campaign directory (default: <name>.campaign)")
    p.add_argument("-k", "--concurrency", type=int, default=None,
                   help="override the spec's runs-in-flight count")
    p.add_argument("--executor", default=None,
                   choices=("processes", "threads", "queue"),
                   help="override the spec's executor backend")
    p.add_argument("--max-steps", type=int, default=None,
                   help="cap steps per run this invocation (runs exit 75)")
    p.add_argument("--no-supervise", action="store_true",
                   help="bare dispatch: no leases, watchdogs, or retries")
    p.add_argument("--watch", action="store_true",
                   help="status: refresh the table until done/interrupted")
    p.add_argument("--poll", type=float, default=0.5,
                   help="worker: queue poll interval [s] (default: 0.5)")
    p.add_argument("--once", action="store_true",
                   help="worker: drain the visible queue once, then exit")
    p.add_argument("--worker-id", default=None,
                   help="worker: stable identity (default: worker-<pid>)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="worker: stop after executing this many jobs")

    p = sub.add_parser("verify", help="checkpoint integrity audit")
    p.add_argument("run_dir", help="run directory (or its checkpoints/)")
    p.add_argument("--quarantine", action="store_true",
                   help="rename failing checkpoints to *.corrupt")

    p = sub.add_parser("serve", help="query a run's diagnostics products")
    p.add_argument("action", choices=("list", "query"),
                   help="list stored snapshots, or answer one query")
    p.add_argument("run_dir", help="run directory (or its diagnostics/)")
    p.add_argument("--product", default="power",
                   choices=("power", "cross", "correlation", "transfer",
                            "slice", "moments"),
                   help="derived product to compute/serve")
    p.add_argument("--field", default="density",
                   help="stored field name (default: density)")
    p.add_argument("--field-b", default=None,
                   help="second field for cross/correlation/transfer "
                        "(default: cdm_density when stored)")
    p.add_argument("--step", type=int, default=None,
                   help="schedule step to serve (default: newest)")
    p.add_argument("--n-bins", type=int, default=16,
                   help="spectral bins (default: 16)")
    p.add_argument("--axis", type=int, default=0,
                   help="slice: axis to cut (default: 0)")
    p.add_argument("--index", type=int, default=None,
                   help="slice: index along the axis (default: middle)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the product cache (always recompute)")
    p.add_argument("--json", action="store_true",
                   help="emit the full result as JSON")

    sub.add_parser("scaling", help="Tables 2-4 + time-to-solution")
    sub.add_parser("memory", help="per-node memory audit")
    sub.add_parser("schemes", help="list advection schemes")

    return parser


_COMMANDS = {
    "info": cmd_info,
    "landau": cmd_landau,
    "hybrid": cmd_hybrid,
    "run": cmd_run,
    "resume": cmd_resume,
    "campaign": cmd_campaign,
    "verify": cmd_verify,
    "serve": cmd_serve,
    "scaling": cmd_scaling,
    "memory": cmd_memory,
    "schemes": cmd_schemes,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
