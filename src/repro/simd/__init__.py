"""SIMD register simulation, the LAT transpose, and Table 1 kernel analogs."""

from .kernels import (
    FLOPS_PER_CELL,
    gflops,
    sweep_cols_lat,
    sweep_cols_strided,
    sweep_cols_vectorized,
    sweep_rows,
    sweep_scalar,
)
from .register import (
    SVE_DP_LANES,
    SVE_SP_LANES,
    InstructionCount,
    SimdMachine,
    SimdRegister,
)
from .transpose import (
    lat_shuffle_count,
    register_transpose,
    tile_transpose_blocked,
    transpose_tile_with_machine,
)

__all__ = [
    "FLOPS_PER_CELL",
    "gflops",
    "sweep_cols_lat",
    "sweep_cols_strided",
    "sweep_cols_vectorized",
    "sweep_rows",
    "sweep_scalar",
    "SVE_DP_LANES",
    "SVE_SP_LANES",
    "InstructionCount",
    "SimdMachine",
    "SimdRegister",
    "lat_shuffle_count",
    "register_transpose",
    "tile_transpose_blocked",
    "transpose_tile_with_machine",
]
