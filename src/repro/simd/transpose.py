"""In-register tile transpose — the LAT building block (paper Fig. 3).

The "load and transpose" (LAT) method loads ``n`` contiguous columns into
``n`` SIMD registers (cheap contiguous loads) and then transposes the
n x n element layout *in registers* with a butterfly network of block
shuffles: log2(n) stages, each writing all n registers, so n*log2(n)
shuffle instructions total — **64 for a 16x16 tile**, the figure the paper
quotes.  Shuffles run from registers at ALU speed, vastly cheaper than the
per-lane gather loads the naive strided scheme needs (Fig. 2).

:func:`register_transpose` performs the butterfly on a
:class:`repro.simd.register.SimdMachine` (counting instructions);
:func:`lat_shuffle_count` returns the analytic cost, and the tests assert
the two agree.
"""

from __future__ import annotations

import numpy as np

from .register import SimdMachine, SimdRegister


def register_transpose(
    machine: SimdMachine, regs: list[SimdRegister]
) -> list[SimdRegister]:
    """Transpose an n x n element tile held in n registers, in place.

    Register r holds row r (or column r — the operation is its own
    inverse).  Returns new registers where register r holds what was
    column r.  Uses the butterfly network: stage block sizes 1, 2, ...,
    n/2; each stage does one blend shuffle per register.
    """
    n = len(regs)
    if n != machine.width:
        raise ValueError("need exactly `width` registers for a square tile")
    if n & (n - 1):
        raise ValueError("tile size must be a power of two")
    cur = list(regs)
    block = 1
    while block < n:
        nxt: list[SimdRegister | None] = [None] * n
        for p in range(n):
            if (p // block) % 2 == 0:
                q = p + block
                nxt[p] = machine.blend_halves(cur[p], cur[q], block, take_high_of_b=True)
            else:
                q = p - block
                nxt[p] = machine.blend_halves(cur[p], cur[q], block, take_high_of_b=False)
        cur = nxt  # type: ignore[assignment]
        block *= 2
    return cur  # type: ignore[return-value]


def lat_shuffle_count(n: int) -> int:
    """Shuffle instructions of the butterfly transpose: n * log2(n).

    n = 16 gives 64, the paper's "64 SIMD instructions ... to transpose
    16x16 data layout on 16 SIMD registers".
    """
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    return n * int(np.log2(n))


def pick_block_shape(
    rows: int, cols: int, itemsize: int, cache_bytes: int = 1 << 18
) -> tuple[int, int]:
    """Block edge lengths for a cache-blocked strided<->contiguous copy.

    Model: a (tile_rows, tile_cols) block touches ``tile_rows`` strided
    runs of ``tile_cols`` contiguous elements on one side and the
    transposed pattern on the other, so the resident footprint is
    ``2 * tile_rows * tile_cols * itemsize``.  Pick the largest square
    tile whose footprint fits ``cache_bytes`` (a conservative slice of
    L2 by default), floored at 16 so every run still spans at least a
    cache line — the same ratio the 16x16 register tile of
    :func:`register_transpose` uses at the SIMD level.
    """
    if rows <= 0 or cols <= 0 or itemsize <= 0:
        raise ValueError("rows, cols and itemsize must be positive")
    if cache_bytes <= 0:
        raise ValueError("cache_bytes must be positive")
    edge = max(16, int(np.sqrt(cache_bytes / (2.0 * itemsize))))
    return min(rows, edge), min(cols, edge)


def tile_transpose_blocked(a: np.ndarray, tile: int = 16) -> np.ndarray:
    """Cache-blocked 2-D transpose (the memory-level analog of LAT).

    Transposes ``a`` tile-by-tile so each tile's loads and stores stay
    contiguous within rows — the NumPy-level counterpart of the register
    transpose, used by the LAT advection kernel in
    :mod:`repro.simd.kernels`.
    """
    if a.ndim != 2:
        raise ValueError("expects a 2-D array")
    rows, cols = a.shape
    out = np.empty((cols, rows), dtype=a.dtype)
    for r0 in range(0, rows, tile):
        r1 = min(r0 + tile, rows)
        for c0 in range(0, cols, tile):
            c1 = min(c0 + tile, cols)
            out[c0:c1, r0:r1] = a[r0:r1, c0:c1].T
    return out


def transpose_tile_with_machine(
    machine: SimdMachine, memory_in: np.ndarray, memory_out: np.ndarray
) -> None:
    """Full LAT data path on one width x width tile:

    contiguous loads (n) -> butterfly transpose (n log n shuffles) ->
    contiguous stores (n).  ``memory_in``/``memory_out`` are
    (width, width) row-major tiles.
    """
    n = machine.width
    if memory_in.shape != (n, n) or memory_out.shape != (n, n):
        raise ValueError("tiles must be (width, width)")
    regs = [machine.load(memory_in, r * n) for r in range(n)]
    regs = register_transpose(machine, regs)
    for r in range(n):
        machine.store(regs[r], memory_out, r * n)
