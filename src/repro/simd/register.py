"""Lane-accurate SIMD register simulation (SVE model).

The paper's §5.3 optimizations are *data-movement* arguments: which loads
are contiguous, how many shuffles an in-register transpose costs.  To make
those arguments executable, this module models a vector unit at the
register level:

* a :class:`SimdRegister` holds ``width`` lanes (SVE at 512 bit = 16
  single-precision lanes, the configuration the paper's "64 instructions
  for a 16x16 transpose" refers to);
* a :class:`SimdMachine` executes loads/stores/arithmetic/shuffles on
  NumPy-backed registers while *counting instructions by class*, so the
  cost claims (contiguous load vs gather, shuffle counts) become testable
  quantities rather than prose.

The machine is an analysis tool: the production kernels in
:mod:`repro.simd.kernels` use plain vectorized NumPy, and the tests verify
that both express the same arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: SVE vector width in single-precision lanes on A64FX (512-bit).
SVE_SP_LANES = 16
#: SVE vector width in double-precision lanes on A64FX.
SVE_DP_LANES = 8


@dataclass
class SimdRegister:
    """One vector register: ``width`` lanes of a NumPy dtype."""

    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 1:
            raise ValueError("a register holds a 1-D lane vector")

    @property
    def width(self) -> int:
        """Number of lanes."""
        return self.data.shape[0]

    def copy(self) -> "SimdRegister":
        """Duplicate the register (a register-register move)."""
        return SimdRegister(self.data.copy())


@dataclass
class InstructionCount:
    """Instruction tally by class."""

    load_contiguous: int = 0
    load_gather: int = 0
    store_contiguous: int = 0
    store_scatter: int = 0
    arithmetic: int = 0
    shuffle: int = 0

    def total(self) -> int:
        """All instructions."""
        return (
            self.load_contiguous
            + self.load_gather
            + self.store_contiguous
            + self.store_scatter
            + self.arithmetic
            + self.shuffle
        )

    def memory_ops(self) -> int:
        """Loads + stores of any kind."""
        return (
            self.load_contiguous
            + self.load_gather
            + self.store_contiguous
            + self.store_scatter
        )


@dataclass
class SimdMachine:
    """Executes SIMD operations on registers, counting instructions.

    Parameters
    ----------
    width:
        Lanes per register (16 = A64FX single precision).
    dtype:
        Element dtype.
    """

    width: int = SVE_SP_LANES
    dtype: np.dtype = field(default=np.dtype(np.float32))
    counts: InstructionCount = field(default_factory=InstructionCount)

    def __post_init__(self) -> None:
        if self.width < 2 or self.width & (self.width - 1):
            raise ValueError("width must be a power of two >= 2")
        self.dtype = np.dtype(self.dtype)

    # -- memory ---------------------------------------------------------

    def load(self, memory: np.ndarray, offset: int) -> SimdRegister:
        """Contiguous vector load of ``width`` elements (one instruction)."""
        flat = memory.reshape(-1)
        if offset < 0 or offset + self.width > flat.size:
            raise IndexError("contiguous load out of bounds")
        self.counts.load_contiguous += 1
        return SimdRegister(flat[offset : offset + self.width].astype(self.dtype))

    def gather(self, memory: np.ndarray, indices: np.ndarray) -> SimdRegister:
        """Gather load from arbitrary indices.

        Counted as ``width`` memory operations: on A64FX (as on most
        cores), a gather micro-ops into per-lane accesses — this is the
        overhead Figure 2 depicts and the LAT method avoids.
        """
        indices = np.asarray(indices)
        if indices.shape != (self.width,):
            raise ValueError("need one index per lane")
        flat = memory.reshape(-1)
        self.counts.load_gather += self.width
        return SimdRegister(flat[indices].astype(self.dtype))

    def store(self, reg: SimdRegister, memory: np.ndarray, offset: int) -> None:
        """Contiguous vector store (one instruction)."""
        self._check(reg)
        flat = memory.reshape(-1)
        if offset < 0 or offset + self.width > flat.size:
            raise IndexError("contiguous store out of bounds")
        self.counts.store_contiguous += 1
        flat[offset : offset + self.width] = reg.data

    def scatter(self, reg: SimdRegister, memory: np.ndarray, indices: np.ndarray) -> None:
        """Scatter store — ``width`` memory operations, like gather."""
        self._check(reg)
        indices = np.asarray(indices)
        if indices.shape != (self.width,):
            raise ValueError("need one index per lane")
        flat = memory.reshape(-1)
        self.counts.store_scatter += self.width
        flat[indices] = reg.data

    # -- arithmetic -------------------------------------------------------

    def add(self, a: SimdRegister, b: SimdRegister) -> SimdRegister:
        """Lane-wise addition."""
        return self._binary(a, b, np.add)

    def sub(self, a: SimdRegister, b: SimdRegister) -> SimdRegister:
        """Lane-wise subtraction."""
        return self._binary(a, b, np.subtract)

    def mul(self, a: SimdRegister, b: SimdRegister) -> SimdRegister:
        """Lane-wise multiplication."""
        return self._binary(a, b, np.multiply)

    def fma(self, a: SimdRegister, b: SimdRegister, c: SimdRegister) -> SimdRegister:
        """Fused multiply-add a*b + c (one instruction)."""
        self._check(a), self._check(b), self._check(c)
        self.counts.arithmetic += 1
        return SimdRegister((a.data * b.data + c.data).astype(self.dtype))

    def broadcast(self, value: float) -> SimdRegister:
        """Splat a scalar across lanes (one instruction)."""
        self.counts.arithmetic += 1
        return SimdRegister(np.full(self.width, value, dtype=self.dtype))

    def minimum(self, a: SimdRegister, b: SimdRegister) -> SimdRegister:
        """Lane-wise minimum."""
        return self._binary(a, b, np.minimum)

    def maximum(self, a: SimdRegister, b: SimdRegister) -> SimdRegister:
        """Lane-wise maximum."""
        return self._binary(a, b, np.maximum)

    # -- shuffles -----------------------------------------------------------

    def shuffle_pair(
        self, a: SimdRegister, b: SimdRegister, take_from_a: np.ndarray, lane_index: np.ndarray
    ) -> SimdRegister:
        """General two-source lane permute (one shuffle instruction).

        Output lane i takes ``a.data[lane_index[i]]`` where
        ``take_from_a[i]`` is True, else ``b.data[lane_index[i]]`` — the
        SVE TBL/ZIP/EXT family abstracted.
        """
        self._check(a), self._check(b)
        take_from_a = np.asarray(take_from_a, dtype=bool)
        lane_index = np.asarray(lane_index)
        if take_from_a.shape != (self.width,) or lane_index.shape != (self.width,):
            raise ValueError("need one selector and index per lane")
        self.counts.shuffle += 1
        out = np.where(take_from_a, a.data[lane_index], b.data[lane_index])
        return SimdRegister(out.astype(self.dtype))

    def blend_halves(
        self, a: SimdRegister, b: SimdRegister, block: int, take_high_of_b: bool
    ) -> SimdRegister:
        """Block-interleave shuffle used by the butterfly transpose.

        With block size ``block`` (power of two < width), output takes
        alternating blocks: blocks at even positions from ``a`` (in place)
        and odd positions from ``b`` shifted by ``±block`` — exactly the
        pairwise exchange of the classic in-register transpose.  One
        instruction.
        """
        self._check(a), self._check(b)
        if block < 1 or block >= self.width or block & (block - 1):
            raise ValueError("block must be a power of two < width")
        lanes = np.arange(self.width)
        in_odd_block = (lanes // block) % 2 == 1
        if take_high_of_b:
            # even blocks: a in place; odd blocks: b from one block left
            idx = np.where(in_odd_block, lanes - block, lanes)
            take_a = ~in_odd_block
        else:
            # odd blocks: a in place; even blocks: b from one block right
            idx = np.where(in_odd_block, lanes, lanes + block)
            take_a = in_odd_block
        self.counts.shuffle += 1
        out = np.where(take_a, a.data[idx], b.data[idx])
        return SimdRegister(out.astype(self.dtype))

    # -- helpers ---------------------------------------------------------

    def _binary(self, a, b, op) -> SimdRegister:
        self._check(a), self._check(b)
        self.counts.arithmetic += 1
        return SimdRegister(op(a.data, b.data).astype(self.dtype))

    def _check(self, reg: SimdRegister) -> None:
        if reg.width != self.width:
            raise ValueError(f"register width {reg.width} != machine width {self.width}")
