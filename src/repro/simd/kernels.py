"""Executable analogs of the paper's Table 1 kernel variants.

Table 1 measures one advection sweep per direction in three
implementations: scalar ("w/o SIMD inst."), vectorized ("w/ SIMD inst."),
and — for the memory-strided u_z direction — the LAT method.  The NumPy
analogs here exhibit the same three performance regimes:

* :func:`sweep_scalar` — pure Python loops: the un-vectorized baseline
  (compiler-scalar code in the paper; interpreter-scalar here — the
  *ratio* to the vectorized kernel is the comparable quantity);
* :func:`sweep_rows` — vectorized along the contiguous (last) axis: the
  x/u_x/u_y cases of Figure 1, where lanes map to adjacent addresses;
* :func:`sweep_cols_strided` — the naive u_z case of Figure 2: the update
  runs along the *leading* axis, so every vector "load" strides across
  memory (expressed as per-column strided slices, which defeats both the
  hardware prefetcher and NumPy's contiguous fast paths);
* :func:`sweep_cols_lat` — the LAT method of Figure 3 at memory level:
  transpose tile-wise into a contiguous buffer, run the contiguous
  kernel, transpose back.

All four compute the *identical* single-precision update: a 5th-order
conservative flux sweep with constant fractional shift alpha (the paper's
kernels likewise share arithmetic across directions).  The flop count per
cell is :data:`FLOPS_PER_CELL`, so benchmarks can report Gflop/s like
Table 1.
"""

from __future__ import annotations

import numpy as np

from ..core.stencil import evaluate_flux_coefficients
from .transpose import tile_transpose_blocked

#: Arithmetic per cell of the shared update: 5 multiplies + 4 adds for
#: the flux, reused once (left/right interfaces), + 2 for the update.
FLOPS_PER_CELL = 11.0


def flux_weights(alpha: float, dtype=np.float32) -> np.ndarray:
    """The five alpha-dependent stencil weights of the order-5 SL flux."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    return evaluate_flux_coefficients(5, np.asarray(alpha, dtype=np.float64)).astype(
        dtype
    )


def sweep_rows(f: np.ndarray, alpha: float) -> np.ndarray:
    """Vectorized sweep along the last (contiguous) axis.

    This is the Figure 1 case: each NumPy operation streams across
    contiguous memory, the analog of one SIMD load per vector of lanes.
    """
    w = flux_weights(alpha, f.dtype)
    flux = np.zeros_like(f)
    for m in range(5):
        flux += w[m] * np.roll(f, 2 - m, axis=-1)
    return f - (flux - np.roll(flux, 1, axis=-1))


def sweep_scalar(f: np.ndarray, alpha: float) -> np.ndarray:
    """The same update in pure Python loops (w/o SIMD analog)."""
    w = [float(x) for x in flux_weights(alpha, np.float64)]
    ny, nx = f.shape
    src = f.tolist()
    flux = [[0.0] * nx for _ in range(ny)]
    for j in range(ny):
        row = src[j]
        frow = flux[j]
        for i in range(nx):
            frow[i] = (
                w[0] * row[i - 2]
                + w[1] * row[i - 1]
                + w[2] * row[i]
                + w[3] * row[(i + 1) % nx]
                + w[4] * row[(i + 2) % nx]
            )
    out = np.empty_like(f)
    for j in range(ny):
        row = src[j]
        frow = flux[j]
        orow = out[j]
        for i in range(nx):
            orow[i] = row[i] - (frow[i] - frow[i - 1])
    return out


def sweep_cols_strided(f: np.ndarray, alpha: float) -> np.ndarray:
    """Naive sweep along the leading axis, column by column.

    The Figure 2 case: every slice ``f[:, j]`` strides across rows, so
    each elementary operation gathers non-adjacent memory — the regime in
    which the paper measures 17.9 Gflops instead of ~230.
    """
    w = flux_weights(alpha, f.dtype)
    ny, nx = f.shape
    out = np.empty_like(f)
    for j in range(nx):
        col = f[:, j]
        flux = (
            w[0] * np.roll(col, 2)
            + w[1] * np.roll(col, 1)
            + w[2] * col
            + w[3] * np.roll(col, -1)
            + w[4] * np.roll(col, -2)
        )
        out[:, j] = col - (flux - np.roll(flux, 1))
    return out


def sweep_cols_lat(f: np.ndarray, alpha: float, tile: int = 64) -> np.ndarray:
    """LAT sweep along the leading axis: transpose, contiguous kernel,
    transpose back (Figure 3 at the memory level)."""
    ft = tile_transpose_blocked(f, tile)
    gt = sweep_rows(ft, alpha)
    return tile_transpose_blocked(gt, tile)


def sweep_cols_vectorized(f: np.ndarray, alpha: float) -> np.ndarray:
    """Whole-array sweep along axis 0 (NumPy's own strided broadcasting).

    Included for completeness: NumPy can vectorize over the trailing axis
    even when the stencil runs along axis 0, which is the production
    choice of :func:`repro.core.advection.advect`; its throughput sits
    between the strided and LAT variants.
    """
    w = flux_weights(alpha, f.dtype)
    flux = np.zeros_like(f)
    for m in range(5):
        flux += w[m] * np.roll(f, 2 - m, axis=0)
    return f - (flux - np.roll(flux, 1, axis=0))


def gflops(n_cells: int, seconds: float) -> float:
    """Table 1's metric for one sweep over ``n_cells`` cells."""
    if seconds <= 0.0:
        raise ValueError("elapsed time must be positive")
    return n_cells * FLOPS_PER_CELL / seconds / 1.0e9
